package sparse

import (
	"fmt"
	"time"

	"repro/internal/par"
)

// FormatChoice is the runtime SpMV storage-format selection exposed as
// the "format" backend parameter. The zero value is the legacy CSR
// path, so components that never see the parameter behave exactly as
// before.
type FormatChoice int

// Format choices. ChoiceVBR has no forced spelling in the parameter
// vocabulary — VBR enters only through the auto probe, and only for
// matrices whose uniform perfect-fill block structure makes the VBR
// kernel bit-exact (see UniformBlocks).
const (
	ChoiceCSR  FormatChoice = iota // legacy CSR kernels (default)
	ChoiceAuto                     // probe the candidates at Setup, bind the winner
	ChoiceMSR                      // order-exact MSR kernel
	ChoiceSELL                     // SELL-C-σ
	ChoiceBCSR                     // cache-blocked CSR
	ChoiceVBR                      // variable block row (auto-probe only)
)

// ParseFormatChoice maps a "format" parameter value to its choice.
func ParseFormatChoice(s string) (FormatChoice, error) {
	switch s {
	case "csr":
		return ChoiceCSR, nil
	case "auto":
		return ChoiceAuto, nil
	case "msr":
		return ChoiceMSR, nil
	case "sell":
		return ChoiceSELL, nil
	case "bcsr":
		return ChoiceBCSR, nil
	}
	return ChoiceCSR, fmt.Errorf("sparse: unknown format %q (want auto|csr|msr|sell|bcsr)", s)
}

// String returns the parameter spelling of the choice.
func (c FormatChoice) String() string {
	switch c {
	case ChoiceCSR:
		return "csr"
	case ChoiceAuto:
		return "auto"
	case ChoiceMSR:
		return "msr"
	case ChoiceSELL:
		return "sell"
	case ChoiceBCSR:
		return "bcsr"
	case ChoiceVBR:
		return "vbr"
	}
	return fmt.Sprintf("FormatChoice(%d)", int(c))
}

// Probe parameters. The procedure is deterministic: a fixed candidate
// order, a fixed repetition count with the median rep kept, a fixed
// probe vector, and a structure-heuristic fast path that skips timing
// for matrices too small for the kernel choice to matter. Wall-clock
// medians themselves still vary run to run — which is safe, because
// every candidate kernel is bitwise-identical, so a noisy pick costs
// speed only, never reproducibility (and ranks may pick different
// winners without any collective agreement).
const (
	// probeMinNNZ is the heuristic fast-path threshold: below it the
	// probe returns CSR without timing — per-product savings on a
	// matrix this small can never repay even the conversion cost.
	probeMinNNZ = 1 << 14

	// probeReps is the fixed number of timed repetitions per candidate
	// (median kept). An additional untimed warm-up rep precedes them.
	probeReps = 5
)

// CandidateTiming is one probed candidate's median product time.
type CandidateTiming struct {
	Format Format
	NS     int64
}

// ProbeResult reports an autotuning decision.
type ProbeResult struct {
	Choice     FormatChoice
	Candidates []CandidateTiming // empty when the fast path was taken
	TotalNS    int64             // wall time spent probing (0 on the fast path)
	Heuristic  bool              // true when the tiny-matrix fast path decided
}

// ProbeFormats times the candidate kernels on the actual operand and
// returns the winner: CSR, SELL-C-σ, cache-blocked CSR, the
// order-exact MSR kernel (square matrices), and VBR (only under the
// UniformBlocks perfect-fill condition). Products run through the same
// pooled ParSpMV path the steady state uses, in add mode when add is
// set, so the measurement matches the bound kernel. Ties and
// probe-noise margins go to CSR: a candidate must beat CSR strictly to
// win, so auto never regresses the legacy path beyond noise.
func ProbeFormats(a *CSR, add bool, p *par.Pool) ProbeResult {
	if a.NNZ() < probeMinNNZ || a.Rows == 0 {
		return ProbeResult{Choice: ChoiceCSR, Heuristic: true}
	}
	start := time.Now()
	workers := 1
	if p != nil {
		workers = p.Workers()
	}

	// Fixed, cheap, sign-mixed probe vector (no RNG dependency).
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1.0 + float64(i%7)*0.25 - float64(i%3)
	}
	y := make([]float64, a.Rows)

	var t ParSpMV
	timeKernel := func() int64 {
		var reps [probeReps]int64
		t.Apply(p, y, x) // warm-up: faults pages, warms caches
		for r := 0; r < probeReps; r++ {
			t0 := time.Now()
			t.Apply(p, y, x)
			reps[r] = time.Since(t0).Nanoseconds()
		}
		// Median of probeReps (insertion sort of a fixed small array).
		for i := 1; i < probeReps; i++ {
			for j := i; j > 0 && reps[j] < reps[j-1]; j-- {
				reps[j], reps[j-1] = reps[j-1], reps[j]
			}
		}
		return reps[probeReps/2]
	}

	res := ProbeResult{Choice: ChoiceCSR}
	bestNS := int64(0)
	record := func(f Format, c FormatChoice) {
		ns := timeKernel()
		res.Candidates = append(res.Candidates, CandidateTiming{f, ns})
		// Strict inequality keeps CSR (probed first) on ties.
		if len(res.Candidates) == 1 || ns < bestNS {
			bestNS, res.Choice = ns, c
		}
	}

	// Fixed candidate order: CSR first (the incumbent), then the
	// challengers, then the structure-gated candidates.
	t.BindCSR(a, add)
	record(FmtCSR, ChoiceCSR)
	t.BindSELL(SELLFromCSR(a, TunedSELLChunk(a.Rows, workers)), add, workers)
	record(FmtSELL, ChoiceSELL)
	t.BindBCSR(BCSRFromCSR(a, 0), add)
	record(FmtBCSR, ChoiceBCSR)
	if a.Rows == a.Cols {
		if m, split, err := MSROrderedFromCSR(a); err == nil {
			t.BindMSROrdered(m, split, add)
			record(FmtMSR, ChoiceMSR)
		}
	}
	if b, ok := UniformBlocks(a); ok {
		if v, err := VBRFromCSR(a, EvenPartition(a.Rows, b), EvenPartition(a.Cols, b)); err == nil {
			t.BindVBR(v, add)
			record(FmtVBR, ChoiceVBR)
		}
	}
	res.TotalNS = time.Since(start).Nanoseconds()
	return res
}
