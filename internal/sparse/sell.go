package sparse

import (
	"fmt"
	"sort"
)

// SELL is the SELL-C-σ (sliced ELLPACK with row sorting) format. Rows
// are reordered by a permutation that sorts each σ-row window by
// descending row length (stable, so equal-length rows keep their
// order), then grouped into chunks of C consecutive sorted rows. Each
// chunk stores its entries column-step-major: step j holds the j-th
// stored entry of every row in the chunk that has one, padded to the
// chunk height so step j of chunk ch starts at ChunkPtr[ch] + j*cc.
//
// Because rows inside a chunk are sorted by descending length, the rows
// active at step j are exactly the leading cnt(j) lanes — the kernels
// walk that prefix and never read a padding slot, so no padded zero
// ever enters the arithmetic. Combined with steps preserving each
// row's CSR entry order, every row accumulates in exactly the serial
// CSR sequence: results are bitwise-identical to CSR.MulVec for any
// chunk size, σ, and worker count.
type SELL struct {
	Rows, Cols int
	C          int // chunk height (rows per chunk)

	// Perm maps sorted position -> original row index; nil means the
	// sort was the identity (uniform row lengths), letting the kernels
	// skip the scatter indirection.
	Perm []int

	// Lens[p] is the stored length of the row at sorted position p;
	// non-increasing within each chunk.
	Lens []int

	// ChunkPtr[ch] is the offset of chunk ch's entries in Vals/ColInd;
	// len(ChunkPtr) == NumChunks()+1. Padding slots hold zero values
	// and column 0 but are never dereferenced by the kernels.
	ChunkPtr []int
	ColInd   []int
	Vals     []float64

	// acc is the per-chunk accumulator scratch for the serial kernels
	// (len C). The serial MulVec/MulVecAdd are therefore not safe for
	// concurrent use on a shared receiver; the pooled path in ParSpMV
	// carries per-slot scratch instead.
	acc []float64
}

// DefaultSELLChunk is the default chunk height: long enough that the
// unrolled lane loop amortizes the per-step bookkeeping, short enough
// that the accumulator scratch stays in L1.
const DefaultSELLChunk = 32

// TunedSELLChunk returns the chunk height to use for a matrix with the
// given row count on a pool with the given worker count (0 or 1 means
// serial). The chunk is shrunk from DefaultSELLChunk only when needed
// so that every worker's static slot range covers at least one whole
// chunk — the pooled kernel partitions work at chunk granularity, so
// this keeps all workers busy on small operators.
func TunedSELLChunk(rows, workers int) int {
	c := DefaultSELLChunk
	if workers > 1 {
		for c > 4 && rows/c < workers {
			c /= 2
		}
	}
	return c
}

// SELLFromCSR converts a CSR matrix to SELL-C-σ. chunk is the chunk
// height C (≤ 0 selects DefaultSELLChunk); the sorting window σ is
// fixed at 8 chunks, a multiple of C so windows never straddle a chunk
// boundary. The conversion preallocates every array from a first
// counting pass; it performs no per-row growth.
func SELLFromCSR(a *CSR, chunk int) *SELL {
	c := chunk
	if c <= 0 {
		c = DefaultSELLChunk
	}
	n := a.Rows
	s := &SELL{Rows: n, Cols: a.Cols, C: c}

	// Sort each σ window by descending row length (stable). The
	// identity check lets uniform matrices skip the scatter.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sigma := 8 * c
	for w0 := 0; w0 < n; w0 += sigma {
		w1 := w0 + sigma
		if w1 > n {
			w1 = n
		}
		win := perm[w0:w1]
		sort.SliceStable(win, func(i, j int) bool {
			return a.RowPtr[win[i]+1]-a.RowPtr[win[i]] > a.RowPtr[win[j]+1]-a.RowPtr[win[j]]
		})
	}
	identity := true
	for p, i := range perm {
		if p != i {
			identity = false
			break
		}
	}

	s.Lens = make([]int, n)
	for p, i := range perm {
		s.Lens[p] = a.RowPtr[i+1] - a.RowPtr[i]
	}
	nch := (n + c - 1) / c
	s.ChunkPtr = make([]int, nch+1)
	for ch := 0; ch < nch; ch++ {
		r0, r1 := ch*c, (ch+1)*c
		if r1 > n {
			r1 = n
		}
		maxLen := 0
		if r1 > r0 {
			maxLen = s.Lens[r0] // non-increasing within the chunk
		}
		s.ChunkPtr[ch+1] = s.ChunkPtr[ch] + maxLen*(r1-r0)
	}
	total := s.ChunkPtr[nch]
	s.ColInd = make([]int, total)
	s.Vals = make([]float64, total)
	for ch := 0; ch < nch; ch++ {
		r0, r1 := ch*c, (ch+1)*c
		if r1 > n {
			r1 = n
		}
		cc := r1 - r0
		base := s.ChunkPtr[ch]
		for l := 0; l < cc; l++ {
			row := perm[r0+l]
			k0 := a.RowPtr[row]
			for j := 0; j < s.Lens[r0+l]; j++ {
				s.ColInd[base+j*cc+l] = a.ColInd[k0+j]
				s.Vals[base+j*cc+l] = a.Vals[k0+j]
			}
		}
	}
	if !identity {
		s.Perm = perm
	}
	s.acc = make([]float64, c)
	return s
}

// Dims returns the global (rows, cols).
func (s *SELL) Dims() (int, int) { return s.Rows, s.Cols }

// NNZ returns the number of stored (non-padding) entries.
func (s *SELL) NNZ() int {
	nnz := 0
	for _, l := range s.Lens {
		nnz += l
	}
	return nnz
}

// NumChunks returns the number of row chunks.
func (s *SELL) NumChunks() int { return len(s.ChunkPtr) - 1 }

// Validate checks structural consistency: monotone chunk offsets sized
// by the chunk's leading row length, non-increasing lengths within each
// chunk, in-range columns for every live slot, and a permutation (when
// present) that is a bijection on [0, Rows).
func (s *SELL) Validate() error {
	n := s.Rows
	if s.C < 1 {
		return fmt.Errorf("sparse: SELL: chunk height %d", s.C)
	}
	if len(s.Lens) != n {
		return fmt.Errorf("sparse: SELL: Lens length %d, want %d", len(s.Lens), n)
	}
	nch := (n + s.C - 1) / s.C
	if len(s.ChunkPtr) != nch+1 || s.ChunkPtr[0] != 0 {
		return fmt.Errorf("sparse: SELL: bad ChunkPtr")
	}
	if s.Perm != nil {
		if len(s.Perm) != n {
			return fmt.Errorf("sparse: SELL: Perm length %d, want %d", len(s.Perm), n)
		}
		seen := make([]bool, n)
		for _, i := range s.Perm {
			if i < 0 || i >= n || seen[i] {
				return fmt.Errorf("sparse: SELL: Perm is not a permutation")
			}
			seen[i] = true
		}
	}
	for ch := 0; ch < nch; ch++ {
		r0, r1 := ch*s.C, (ch+1)*s.C
		if r1 > n {
			r1 = n
		}
		cc := r1 - r0
		maxLen := 0
		for l := 0; l < cc; l++ {
			ln := s.Lens[r0+l]
			if ln < 0 {
				return fmt.Errorf("sparse: SELL: negative length at position %d", r0+l)
			}
			if l > 0 && ln > s.Lens[r0+l-1] {
				return fmt.Errorf("sparse: SELL: lengths not sorted within chunk %d", ch)
			}
			if ln > maxLen {
				maxLen = ln
			}
		}
		if s.ChunkPtr[ch+1]-s.ChunkPtr[ch] != maxLen*cc {
			return fmt.Errorf("sparse: SELL: chunk %d spans %d slots, want %d", ch, s.ChunkPtr[ch+1]-s.ChunkPtr[ch], maxLen*cc)
		}
		base := s.ChunkPtr[ch]
		for l := 0; l < cc; l++ {
			for j := 0; j < s.Lens[r0+l]; j++ {
				if jc := s.ColInd[base+j*cc+l]; jc < 0 || jc >= s.Cols {
					return fmt.Errorf("sparse: SELL: column %d out of range", jc)
				}
			}
		}
	}
	if s.ChunkPtr[nch] != len(s.Vals) || len(s.Vals) != len(s.ColInd) {
		return fmt.Errorf("sparse: SELL: storage length mismatch")
	}
	return nil
}

// mulChunk computes the products of chunk ch into acc (one slot per
// lane, accumulated in each row's CSR entry order) and returns the
// chunk's row range. acc must have length ≥ the chunk height.
func (s *SELL) mulChunk(ch int, acc, x []float64) (r0, r1 int) {
	r0, r1 = ch*s.C, (ch+1)*s.C
	if r1 > s.Rows {
		r1 = s.Rows
	}
	cc := r1 - r0
	for l := 0; l < cc; l++ {
		acc[l] = 0
	}
	maxLen := 0
	if cc > 0 {
		maxLen = s.Lens[r0]
	}
	base := s.ChunkPtr[ch]
	cnt := cc
	for j := 0; j < maxLen; j++ {
		for cnt > 0 && s.Lens[r0+cnt-1] <= j {
			cnt--
		}
		off := base + j*cc
		v := s.Vals[off : off+cnt]
		ci := s.ColInd[off : off+cnt]
		l := 0
		for ; l+4 <= cnt; l += 4 {
			acc[l] += v[l] * x[ci[l]]
			acc[l+1] += v[l+1] * x[ci[l+1]]
			acc[l+2] += v[l+2] * x[ci[l+2]]
			acc[l+3] += v[l+3] * x[ci[l+3]]
		}
		for ; l < cnt; l++ {
			acc[l] += v[l] * x[ci[l]]
		}
	}
	return r0, r1
}

// scatterChunk writes acc back to y for the chunk rows, through Perm
// when present, adding when add is set.
func (s *SELL) scatterChunk(r0, r1 int, acc, y []float64, add bool) {
	if s.Perm == nil {
		if add {
			for l, r := 0, r0; r < r1; l, r = l+1, r+1 {
				y[r] += acc[l]
			}
		} else {
			for l, r := 0, r0; r < r1; l, r = l+1, r+1 {
				y[r] = acc[l]
			}
		}
		return
	}
	if add {
		for l, p := 0, r0; p < r1; l, p = l+1, p+1 {
			y[s.Perm[p]] += acc[l]
		}
	} else {
		for l, p := 0, r0; p < r1; l, p = l+1, p+1 {
			y[s.Perm[p]] = acc[l]
		}
	}
}

// MulVec computes y = A*x, bitwise-identical to CSR.MulVec on the
// matrix this SELL was converted from. Not safe for concurrent calls
// on one receiver (chunk scratch is receiver-owned); use ParSpMV for
// the pooled path.
func (s *SELL) MulVec(y, x []float64) {
	checkDims("SELL.MulVec x", s.Cols, len(x))
	checkDims("SELL.MulVec y", s.Rows, len(y))
	for ch := 0; ch < s.NumChunks(); ch++ {
		r0, r1 := s.mulChunk(ch, s.acc, x)
		s.scatterChunk(r0, r1, s.acc, y, false)
	}
}

// MulVecAdd computes y += A*x (same bitwise contract as MulVec,
// mirroring CSR.MulVecAdd's per-row y[i] += sum).
func (s *SELL) MulVecAdd(y, x []float64) {
	checkDims("SELL.MulVecAdd x", s.Cols, len(x))
	checkDims("SELL.MulVecAdd y", s.Rows, len(y))
	for ch := 0; ch < s.NumChunks(); ch++ {
		r0, r1 := s.mulChunk(ch, s.acc, x)
		s.scatterChunk(r0, r1, s.acc, y, true)
	}
}

// ToCSR expands back to CSR (exact inverse of SELLFromCSR).
func (s *SELL) ToCSR() *CSR {
	n := s.Rows
	rp := make([]int, n+1)
	for p, l := range s.Lens {
		row := p
		if s.Perm != nil {
			row = s.Perm[p]
		}
		rp[row+1] = l
	}
	for i := 0; i < n; i++ {
		rp[i+1] += rp[i]
	}
	ci := make([]int, rp[n])
	v := make([]float64, rp[n])
	for ch := 0; ch < s.NumChunks(); ch++ {
		r0, r1 := ch*s.C, (ch+1)*s.C
		if r1 > n {
			r1 = n
		}
		cc := r1 - r0
		base := s.ChunkPtr[ch]
		for l := 0; l < cc; l++ {
			row := r0 + l
			if s.Perm != nil {
				row = s.Perm[r0+l]
			}
			for j := 0; j < s.Lens[r0+l]; j++ {
				ci[rp[row]+j] = s.ColInd[base+j*cc+l]
				v[rp[row]+j] = s.Vals[base+j*cc+l]
			}
		}
	}
	out, err := NewCSR(n, s.Cols, rp, ci, v)
	if err != nil {
		panic(fmt.Sprintf("sparse: SELL.ToCSR: %v", err))
	}
	return out
}
