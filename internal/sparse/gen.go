package sparse

import (
	"math"
	"math/rand"
)

// Identity returns the n×n identity in CSR form.
func Identity(n int) *CSR {
	rp := make([]int, n+1)
	ci := make([]int, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		rp[i+1] = i + 1
		ci[i] = i
		v[i] = 1
	}
	return &CSR{Rows: n, Cols: n, RowPtr: rp, ColInd: ci, Vals: v}
}

// Tridiag returns the n×n tridiagonal matrix with constant bands
// (sub, diag, super) in CSR form.
func Tridiag(n int, sub, diag, super float64) *CSR {
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			coo.Append(i, i-1, sub)
		}
		coo.Append(i, i, diag)
		if i < n-1 {
			coo.Append(i, i+1, super)
		}
	}
	return coo.ToCSR()
}

// Laplace2D returns the standard 5-point discrete Laplacian on an
// nx×ny interior grid (Dirichlet), a symmetric positive definite matrix of
// order nx*ny.
func Laplace2D(nx, ny int) *CSR {
	n := nx * ny
	coo := NewCOO(n, n)
	idx := func(i, j int) int { return j*nx + i }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			r := idx(i, j)
			coo.Append(r, r, 4)
			if i > 0 {
				coo.Append(r, idx(i-1, j), -1)
			}
			if i < nx-1 {
				coo.Append(r, idx(i+1, j), -1)
			}
			if j > 0 {
				coo.Append(r, idx(i, j-1), -1)
			}
			if j < ny-1 {
				coo.Append(r, idx(i, j+1), -1)
			}
		}
	}
	return coo.ToCSR()
}

// RandomDiagDominant returns a random sparse n×n matrix with about
// nnzPerRow off-diagonal entries per row, made strictly diagonally
// dominant (hence nonsingular and friendly to both iterative and direct
// solvers). Deterministic for a given seed.
func RandomDiagDominant(n, nnzPerRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		rowAbs := 0.0
		for k := 0; k < nnzPerRow; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.Float64()*2 - 1
			coo.Append(i, j, v)
			rowAbs += math.Abs(v)
		}
		coo.Append(i, i, rowAbs+1+rng.Float64())
	}
	return coo.ToCSR()
}

// RandomUnsymmetric returns a random sparse matrix with entries in
// [-1, 1), no dominance guarantee — useful for exercising pivoting in the
// direct solver. The diagonal is always present (possibly small).
func RandomUnsymmetric(n, nnzPerRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Append(i, i, rng.Float64()*0.01)
		for k := 0; k < nnzPerRow; k++ {
			j := rng.Intn(n)
			coo.Append(i, j, rng.Float64()*2-1)
		}
	}
	return coo.ToCSR()
}

// RandomVector returns a deterministic random vector with entries in
// [-1, 1).
func RandomVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}
