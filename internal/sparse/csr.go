package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a compressed-sparse-row matrix: for row i the column indices are
// ColInd[RowPtr[i]:RowPtr[i+1]] with matching Vals. Column indices within a
// row are kept sorted and duplicate-free by all constructors in this
// package.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // length Rows+1
	ColInd     []int // length NNZ
	Vals       []float64
}

// NewCSR validates the raw arrays and returns a CSR wrapper. The arrays
// are used directly (not copied).
func NewCSR(rows, cols int, rowPtr, colInd []int, vals []float64) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: NewCSR: negative dimensions %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("sparse: NewCSR: rowPtr length %d, want %d", len(rowPtr), rows+1)
	}
	if rowPtr[0] != 0 {
		return nil, fmt.Errorf("sparse: NewCSR: rowPtr[0] = %d, want 0", rowPtr[0])
	}
	if len(colInd) != len(vals) {
		return nil, fmt.Errorf("sparse: NewCSR: colInd length %d != vals length %d", len(colInd), len(vals))
	}
	if rowPtr[rows] != len(colInd) {
		return nil, fmt.Errorf("sparse: NewCSR: rowPtr[end] = %d, want nnz %d", rowPtr[rows], len(colInd))
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("sparse: NewCSR: rowPtr not monotone at row %d", i)
		}
	}
	for _, j := range colInd {
		if j < 0 || j >= cols {
			return nil, fmt.Errorf("sparse: NewCSR: column index %d out of range [0,%d)", j, cols)
		}
	}
	return &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColInd: colInd, Vals: vals}, nil
}

// Dims returns (rows, cols).
func (a *CSR) Dims() (int, int) { return a.Rows, a.Cols }

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Vals) }

// Clone returns a deep copy.
func (a *CSR) Clone() *CSR {
	rp := make([]int, len(a.RowPtr))
	copy(rp, a.RowPtr)
	ci := make([]int, len(a.ColInd))
	copy(ci, a.ColInd)
	v := make([]float64, len(a.Vals))
	copy(v, a.Vals)
	return &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: rp, ColInd: ci, Vals: v}
}

// MulVec computes y = A*x.
func (a *CSR) MulVec(y, x []float64) {
	checkDims("CSR.MulVec x", a.Cols, len(x))
	checkDims("CSR.MulVec y", a.Rows, len(y))
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Vals[k] * x[a.ColInd[k]]
		}
		y[i] = s
	}
}

// MulVecAdd computes y += A*x.
func (a *CSR) MulVecAdd(y, x []float64) {
	checkDims("CSR.MulVecAdd x", a.Cols, len(x))
	checkDims("CSR.MulVecAdd y", a.Rows, len(y))
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Vals[k] * x[a.ColInd[k]]
		}
		y[i] += s
	}
}

// MulVecTrans computes y = Aᵀ*x.
func (a *CSR) MulVecTrans(y, x []float64) {
	checkDims("CSR.MulVecTrans x", a.Rows, len(x))
	checkDims("CSR.MulVecTrans y", a.Cols, len(y))
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			y[a.ColInd[k]] += a.Vals[k] * xi
		}
	}
}

// At returns A[i,j] using binary search within the row (0 if not stored).
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	k := lo + sort.SearchInts(a.ColInd[lo:hi], j)
	if k < hi && a.ColInd[k] == j {
		return a.Vals[k]
	}
	return 0
}

// Diagonal extracts the main diagonal into a new slice of length
// min(rows, cols); entries absent from the pattern are zero.
func (a *CSR) Diagonal() []float64 {
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = a.At(i, i)
	}
	return d
}

// Transpose returns Aᵀ as a new CSR.
func (a *CSR) Transpose() *CSR {
	nnz := a.NNZ()
	rp := make([]int, a.Cols+1)
	for _, j := range a.ColInd {
		rp[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		rp[j+1] += rp[j]
	}
	ci := make([]int, nnz)
	v := make([]float64, nnz)
	next := make([]int, a.Cols)
	copy(next, rp[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColInd[k]
			p := next[j]
			ci[p] = i
			v[p] = a.Vals[k]
			next[j]++
		}
	}
	return &CSR{Rows: a.Cols, Cols: a.Rows, RowPtr: rp, ColInd: ci, Vals: v}
}

// NormFrob returns the Frobenius norm.
func (a *CSR) NormFrob() float64 {
	return Norm2(a.Vals)
}

// NormInf returns the infinity (max absolute row sum) norm.
func (a *CSR) NormInf() float64 {
	m := 0.0
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += math.Abs(a.Vals[k])
		}
		if s > m {
			m = s
		}
	}
	return m
}

// NormOne returns the one (max absolute column sum) norm.
func (a *CSR) NormOne() float64 {
	col := make([]float64, a.Cols)
	for k, j := range a.ColInd {
		col[j] += math.Abs(a.Vals[k])
	}
	return NormInf(col)
}

// RowView returns the column indices and values of row i, aliasing the
// matrix storage. Callers must not modify the index slice.
func (a *CSR) RowView(i int) (cols []int, vals []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColInd[lo:hi], a.Vals[lo:hi]
}

// ScaleRows multiplies row i by d[i] in place.
func (a *CSR) ScaleRows(d []float64) {
	checkDims("CSR.ScaleRows", a.Rows, len(d))
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			a.Vals[k] *= d[i]
		}
	}
}

// Residual computes r = b − A·x into a new slice (a convenience used by
// solvers and tests).
func (a *CSR) Residual(b, x []float64) []float64 {
	r := make([]float64, a.Rows)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return r
}

// SubMatrix extracts the contiguous block with rows [r0,r1) and all
// columns, reusing value copies.
func (a *CSR) SubMatrix(r0, r1 int) *CSR {
	if r0 < 0 || r1 < r0 || r1 > a.Rows {
		panic(fmt.Sprintf("sparse: SubMatrix rows [%d,%d) out of range", r0, r1))
	}
	lo, hi := a.RowPtr[r0], a.RowPtr[r1]
	rp := make([]int, r1-r0+1)
	for i := range rp {
		rp[i] = a.RowPtr[r0+i] - lo
	}
	ci := make([]int, hi-lo)
	copy(ci, a.ColInd[lo:hi])
	v := make([]float64, hi-lo)
	copy(v, a.Vals[lo:hi])
	return &CSR{Rows: r1 - r0, Cols: a.Cols, RowPtr: rp, ColInd: ci, Vals: v}
}

// ToCOO converts to coordinate format.
func (a *CSR) ToCOO() *COO {
	c := NewCOO(a.Rows, a.Cols)
	c.Row = make([]int, 0, a.NNZ())
	c.Col = make([]int, 0, a.NNZ())
	c.Val = make([]float64, 0, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c.Row = append(c.Row, i)
			c.Col = append(c.Col, a.ColInd[k])
			c.Val = append(c.Val, a.Vals[k])
		}
	}
	return c
}

// ToCSC converts to compressed-sparse-column format.
func (a *CSR) ToCSC() *CSC {
	t := a.Transpose()
	return &CSC{Rows: a.Rows, Cols: a.Cols, ColPtr: t.RowPtr, RowInd: t.ColInd, Vals: t.Vals}
}

// Equal reports whether two matrices have identical dimensions, patterns
// and values (exact comparison).
func (a *CSR) Equal(b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColInd {
		//lisi:ignore floateq Equal is documented bit-exact (format round-trips must not alter values); AlmostEqual is the tolerance variant
		if a.ColInd[k] != b.ColInd[k] || a.Vals[k] != b.Vals[k] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether a and b have the same dimensions and
// max |a_ij − b_ij| ≤ tol (patterns may differ).
func (a *CSR) AlmostEqual(b *CSR, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	diff := 0.0
	seen := make(map[[2]int]float64)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			seen[[2]int{i, a.ColInd[k]}] = a.Vals[k]
		}
	}
	for i := 0; i < b.Rows; i++ {
		for k := b.RowPtr[i]; k < b.RowPtr[i+1]; k++ {
			key := [2]int{i, b.ColInd[k]}
			d := math.Abs(seen[key] - b.Vals[k])
			if d > diff {
				diff = d
			}
			delete(seen, key)
		}
	}
	for _, v := range seen {
		if math.Abs(v) > diff {
			diff = math.Abs(v)
		}
	}
	return diff <= tol
}
