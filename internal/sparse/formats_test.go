package sparse

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestMSRLayout(t *testing.T) {
	// A = [4 -1 0; -1 4 -1; 0 -1 4]
	a := Tridiag(3, -1, 4, -1)
	m, err := MSRFromCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 3 {
		t.Fatalf("N = %d", m.N)
	}
	// Diagonal stored in Val[0:3].
	for i := 0; i < 3; i++ {
		if m.Val[i] != 4 {
			t.Errorf("Val[%d] = %v, want 4", i, m.Val[i])
		}
	}
	if m.Ind[0] != 4 {
		t.Errorf("Ind[0] = %d, want n+1 = 4", m.Ind[0])
	}
	if m.NNZ() != a.NNZ() {
		t.Errorf("NNZ = %d, want %d", m.NNZ(), a.NNZ())
	}
	// Validation round trip through NewMSR.
	if _, err := NewMSR(m.N, m.Val, m.Ind); err != nil {
		t.Errorf("NewMSR rejected valid arrays: %v", err)
	}
}

func TestMSRRejectsNonSquare(t *testing.T) {
	a := randomCOO(3, 4, 6, 9).ToCSR()
	if _, err := MSRFromCSR(a); err == nil {
		t.Error("MSRFromCSR accepted a non-square matrix")
	}
}

func TestNewMSRValidation(t *testing.T) {
	if _, err := NewMSR(2, []float64{1, 2, 0, 5}, []int{3, 4, 4, 1}); err != nil {
		t.Errorf("valid MSR rejected: %v", err)
	}
	bad := [][2]any{
		{[]float64{1, 2, 0}, []int{3, 4}},          // length mismatch
		{[]float64{1, 2, 0, 5}, []int{2, 4, 4, 1}}, // ind[0] wrong
		{[]float64{1, 2, 0, 5}, []int{3, 5, 4, 1}}, // not monotone
		{[]float64{1, 2, 0, 5}, []int{3, 4, 4, 9}}, // col out of range
	}
	for i, c := range bad {
		if _, err := NewMSR(2, c[0].([]float64), c[1].([]int)); err == nil {
			t.Errorf("case %d: invalid MSR accepted", i)
		}
	}
}

func TestVBRUniformBlocks(t *testing.T) {
	// 4x4 matrix from 2x2 blocks.
	a := Laplace2D(2, 2)
	vbr, err := VBRFromCSR(a, []int{0, 2, 4}, []int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := vbr.Validate(); err != nil {
		t.Fatal(err)
	}
	if r, c := vbr.Dims(); r != 4 || c != 4 {
		t.Errorf("dims %dx%d", r, c)
	}
	if vbr.NumBlockRows() != 2 {
		t.Errorf("block rows = %d", vbr.NumBlockRows())
	}
	densesEqual(t, denseOf(a), denseOf(vbr), 0, "VBR operator")
	back := vbr.ToCSR()
	if !a.AlmostEqual(back, 0) {
		t.Error("VBR -> CSR lost entries")
	}
}

func TestVBRPartitionValidation(t *testing.T) {
	a := Identity(4)
	if _, err := VBRFromCSR(a, []int{0, 2}, []int{0, 2, 4}); err == nil {
		t.Error("row partition not spanning accepted")
	}
	if _, err := VBRFromCSR(a, []int{0, 3, 2, 4}, []int{0, 4}); err == nil {
		t.Error("non-monotone row partition accepted")
	}
}

func TestFEMAssembly(t *testing.T) {
	// Two overlapping 1D linear elements on 3 nodes; assembled matrix is
	// the standard [1 -1 0; -1 2 -1; 0 -1 1].
	f := NewFEM(3, 3)
	ke := []float64{1, -1, -1, 1}
	if err := f.AddElement([]int{0, 1}, ke); err != nil {
		t.Fatal(err)
	}
	if err := f.AddElement([]int{1, 2}, ke); err != nil {
		t.Fatal(err)
	}
	a := f.ToCSR()
	want := [][]float64{{1, -1, 0}, {-1, 2, -1}, {0, -1, 1}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != want[i][j] {
				t.Errorf("A[%d,%d] = %v, want %v", i, j, a.At(i, j), want[i][j])
			}
		}
	}
	// Matrix-free product equals assembled product.
	densesEqual(t, denseOf(f), denseOf(a), 0, "FEM operator")
	if f.NNZ() != 8 {
		t.Errorf("FEM NNZ = %d, want 8 raw entries", f.NNZ())
	}
}

func TestFEMValidation(t *testing.T) {
	f := NewFEM(3, 3)
	if err := f.AddElement([]int{0, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("wrong-size element matrix accepted")
	}
	if err := f.AddElement([]int{0, 7}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestMatrixIORoundTrip(t *testing.T) {
	a := RandomDiagDominant(12, 3, 7)
	var buf bytes.Buffer
	if err := WriteCOO(&buf, a); err != nil {
		t.Fatal(err)
	}
	coo, err := ReadCOO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.AlmostEqual(coo.ToCSR(), 0) {
		t.Error("matrix I/O round trip changed values")
	}
}

func TestVectorIORoundTrip(t *testing.T) {
	x := RandomVector(37, 3)
	x[0] = math.Pi
	var buf bytes.Buffer
	if err := WriteVector(&buf, x); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !densEqHelper(x, got, 0) {
		t.Error("vector I/O round trip changed values")
	}
}

func TestReadCOOErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"badSize":      "a b c\n",
		"shortTriplet": "2 2 1\n1 1\n",
		"outOfRange":   "2 2 1\n5 1 3.0\n",
		"countLied":    "2 2 3\n1 1 1.0\n",
		"badValue":     "2 2 1\n1 1 zzz\n",
	}
	for name, in := range cases {
		if _, err := ReadCOO(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadCOO accepted malformed input", name)
		}
	}
}

func TestReadVectorErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":     "",
		"badSize":   "x\n",
		"badValue":  "1\nzzz\n",
		"countLied": "3\n1.0\n",
	} {
		if _, err := ReadVector(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadVector accepted malformed input", name)
		}
	}
}

func TestFormatString(t *testing.T) {
	for f, want := range map[Format]string{
		FmtCSR: "CSR", FmtCOO: "COO", FmtMSR: "MSR",
		FmtVBR: "VBR", FmtFEM: "FEM", FmtCSC: "CSC",
	} {
		if f.String() != want {
			t.Errorf("Format %d String = %q", int(f), f.String())
		}
	}
	if s := Format(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown format string %q", s)
	}
}
