package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

// denseMul is the reference dense product.
func denseMul(a []float64, ar, ac int, b []float64, bc int) []float64 {
	c := make([]float64, ar*bc)
	for i := 0; i < ar; i++ {
		for k := 0; k < ac; k++ {
			av := a[i*ac+k]
			if av == 0 {
				continue
			}
			for j := 0; j < bc; j++ {
				c[i*bc+j] += av * b[k*bc+j]
			}
		}
	}
	return c
}

func TestMultiplySmall(t *testing.T) {
	// [1 2; 0 3] * [4 0; 1 5] = [6 10; 3 15]
	a := NewCOO(2, 2)
	a.Append(0, 0, 1)
	a.Append(0, 1, 2)
	a.Append(1, 1, 3)
	b := NewCOO(2, 2)
	b.Append(0, 0, 4)
	b.Append(1, 0, 1)
	b.Append(1, 1, 5)
	c, err := Multiply(a.ToCSR(), b.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{6, 10}, {3, 15}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C[%d,%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMultiplyIdentity(t *testing.T) {
	a := RandomDiagDominant(25, 4, 9)
	id := Identity(25)
	left, err := Multiply(id, a)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Multiply(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if !a.AlmostEqual(left, 0) || !a.AlmostEqual(right, 0) {
		t.Error("identity product changed the matrix")
	}
}

func TestMultiplyDimensionMismatch(t *testing.T) {
	if _, err := Multiply(Identity(3), Identity(4)); err == nil {
		t.Error("inner dimension mismatch accepted")
	}
}

func TestQuickMultiplyMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		ar := 3 + int(seed%5+5)%5
		ac := 2 + int(seed%4+4)%4
		bc := 3 + int(seed%6+6)%6
		a := randomCOO(ar, ac, ar*3, seed).ToCSR()
		b := randomCOO(ac, bc, ac*3, seed+7).ToCSR()
		c, err := Multiply(a, b)
		if err != nil {
			return false
		}
		want := denseMul(denseOf(a), ar, ac, denseOf(b), bc)
		got := denseOf(c)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-12 {
				return false
			}
		}
		// Column indices sorted within each row.
		for i := 0; i < c.Rows; i++ {
			for k := c.RowPtr[i] + 1; k < c.RowPtr[i+1]; k++ {
				if c.ColInd[k-1] >= c.ColInd[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTripleProductGalerkin(t *testing.T) {
	// RAP of the 1D Laplacian with linear interpolation reproduces the
	// coarse Laplacian up to scaling: the classic Galerkin identity.
	nf, nc := 7, 3
	a := Tridiag(nf, -1, 2, -1)
	p := NewCOO(nf, nc)
	for c := 0; c < nc; c++ {
		f := 2*c + 1
		p.Append(f, c, 1)
		p.Append(f-1, c, 0.5)
		p.Append(f+1, c, 0.5)
	}
	pc := p.ToCSR()
	r := pc.Transpose()
	for i := range r.Vals {
		r.Vals[i] *= 0.5 // full weighting in 1D
	}
	rap, err := TripleProduct(r, a, pc)
	if err != nil {
		t.Fatal(err)
	}
	// Galerkin coarse operator of the unscaled 1D Laplacian with these
	// transfer operators is (1/4)·tridiag(-1,2,-1) — the coarse stencil
	// carries the 2:1 grid-spacing factor.
	want := Tridiag(nc, -0.25, 0.5, -0.25)
	if !rap.AlmostEqual(want, 1e-14) {
		t.Errorf("RAP mismatch:\n got %v\nwant %v", denseOf(rap), denseOf(want))
	}
}
