package sparse

import (
	"fmt"
	"testing"
)

// Kernel benchmarks for the sparse substrate. These quantify the costs
// the LISI adapter deals in: format conversion (the setupMatrix role)
// and matrix-vector products in every supported format.

func benchOperator(n int) *CSR { return Laplace2D(n, n) }

// benchBlockMatrix builds a block-tridiagonal matrix of fully dense
// 3×3 blocks — the perfect-fill structure that enrolls VBR.
func benchBlockMatrix(blockRows int) *CSR {
	coo := NewCOO(3*blockRows, 3*blockRows)
	for bi := 0; bi < blockRows; bi++ {
		for _, bj := range []int{bi - 1, bi, bi + 1} {
			if bj < 0 || bj >= blockRows {
				continue
			}
			for r := 0; r < 3; r++ {
				for c := 0; c < 3; c++ {
					coo.Append(3*bi+r, 3*bj+c, float64(1+r+c)-0.5*float64(bi%7))
				}
			}
		}
	}
	return coo.ToCSR()
}

// BenchmarkSpMVFormats times one serial product per storage format on
// the bench matrix families. The per-format keys (and their 0-alloc
// gates) and the auto row — the steady-state kernel the probe binds,
// which must track the per-family winner — are pinned by
// scripts/benchguard.sh.
func BenchmarkSpMVFormats(b *testing.B) {
	families := []struct {
		name string
		a    *CSR
	}{
		{"stencil", benchOperator(100)},             // n=10,000, nnz≈49,600
		{"banded", Tridiag(30000, -1.25, 4, -0.75)}, // nnz≈90,000
		{"random", RandomUnsymmetric(20000, 8, 3)},  // nnz≈160,000
		{"block3", benchBlockMatrix(2000)},          // n=6,000, nnz≈54,000
	}
	for _, fam := range families {
		a := fam.a
		x := RandomVector(a.Cols, 1)
		y := make([]float64, a.Rows)
		msr, err := MSRFromCSR(a)
		if err != nil {
			b.Fatal(err)
		}
		kernels := []struct {
			name string
			m    Matrix
		}{
			{"CSR", a},
			{"MSR", msr},
			{"SELL", SELLFromCSR(a, 0)},
			{"BCSR", BCSRFromCSR(a, 0)},
		}
		if blk, ok := UniformBlocks(a); ok {
			vbr, err := VBRFromCSR(a, EvenPartition(a.Rows, blk), EvenPartition(a.Cols, blk))
			if err != nil {
				b.Fatal(err)
			}
			kernels = append(kernels, struct {
				name string
				m    Matrix
			}{"VBR", vbr})
		}
		// The probe-bound steady-state kernel: what format=auto runs
		// after Setup. Must never lose to CSR beyond probe noise.
		var auto ParSpMV
		bindProbeWinner(b, &auto, a, ProbeFormats(a, false, nil).Choice)
		for _, tc := range kernels {
			b.Run(fam.name+"/"+tc.name, func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(a.NNZ() * 8))
				for i := 0; i < b.N; i++ {
					tc.m.MulVec(y, x)
				}
			})
		}
		b.Run(fam.name+"/auto", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(a.NNZ() * 8))
			for i := 0; i < b.N; i++ {
				auto.Apply(nil, y, x)
			}
		})
	}
}

// bindProbeWinner binds one probe decision for a into k, the way
// pmat.Mat.SetFormat does for format=auto.
func bindProbeWinner(b *testing.B, k *ParSpMV, a *CSR, choice FormatChoice) {
	b.Helper()
	switch choice {
	case ChoiceSELL:
		k.BindSELL(SELLFromCSR(a, TunedSELLChunk(a.Rows, 1)), false, 1)
	case ChoiceBCSR:
		k.BindBCSR(BCSRFromCSR(a, 0), false)
	case ChoiceMSR:
		m, split, err := MSROrderedFromCSR(a)
		if err != nil {
			b.Fatal(err)
		}
		k.BindMSROrdered(m, split, false)
	case ChoiceVBR:
		blk, _ := UniformBlocks(a)
		v, err := VBRFromCSR(a, EvenPartition(a.Rows, blk), EvenPartition(a.Cols, blk))
		if err != nil {
			b.Fatal(err)
		}
		k.BindVBR(v, false)
	default:
		k.BindCSR(a, false)
	}
}

// BenchmarkFormatProbe bounds the Setup-time cost of the autotuning
// probe (conversions plus the fixed median-of-k timing reps) on the
// stencil operator.
func BenchmarkFormatProbe(b *testing.B) {
	b.ReportAllocs()
	a := benchOperator(100)
	for i := 0; i < b.N; i++ {
		if res := ProbeFormats(a, false, nil); res.Heuristic {
			b.Fatal("probe took the tiny-matrix fast path")
		}
	}
}

func evenPartition(n, blk int) []int {
	var p []int
	for i := 0; i <= n; i += blk {
		p = append(p, i)
	}
	if p[len(p)-1] != n {
		p = append(p, n)
	}
	return p
}

func BenchmarkCOOToCSR(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{50, 100, 200} {
		coo := benchOperator(n).ToCOO()
		b.Run(fmt.Sprintf("n=%d", n*n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				coo.ToCSR()
			}
		})
	}
}

func BenchmarkTranspose(b *testing.B) {
	b.ReportAllocs()
	a := benchOperator(100)
	for i := 0; i < b.N; i++ {
		a.Transpose()
	}
}

func BenchmarkMultiply(b *testing.B) {
	b.ReportAllocs()
	a := benchOperator(60)
	for i := 0; i < b.N; i++ {
		if _, err := Multiply(a, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMSRConversion(b *testing.B) {
	b.ReportAllocs()
	a := benchOperator(100)
	for i := 0; i < b.N; i++ {
		if _, err := MSRFromCSR(a); err != nil {
			b.Fatal(err)
		}
	}
}
