package sparse

import (
	"fmt"
	"testing"
)

// Kernel benchmarks for the sparse substrate. These quantify the costs
// the LISI adapter deals in: format conversion (the setupMatrix role)
// and matrix-vector products in every supported format.

func benchOperator(n int) *CSR { return Laplace2D(n, n) }

func BenchmarkSpMVFormats(b *testing.B) {
	b.ReportAllocs()
	a := benchOperator(100) // n=10,000, nnz≈49,600
	x := RandomVector(a.Cols, 1)
	y := make([]float64, a.Rows)
	msr, err := MSRFromCSR(a)
	if err != nil {
		b.Fatal(err)
	}
	vbr, err := VBRFromCSR(a, evenPartition(a.Rows, 4), evenPartition(a.Cols, 4))
	if err != nil {
		b.Fatal(err)
	}
	mats := []struct {
		name string
		m    Matrix
	}{
		{"CSR", a},
		{"CSC", a.ToCSC()},
		{"COO", a.ToCOO()},
		{"MSR", msr},
		{"VBR", vbr},
	}
	for _, tc := range mats {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(a.NNZ() * 8))
			for i := 0; i < b.N; i++ {
				tc.m.MulVec(y, x)
			}
		})
	}
}

func evenPartition(n, blk int) []int {
	var p []int
	for i := 0; i <= n; i += blk {
		p = append(p, i)
	}
	if p[len(p)-1] != n {
		p = append(p, n)
	}
	return p
}

func BenchmarkCOOToCSR(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{50, 100, 200} {
		coo := benchOperator(n).ToCOO()
		b.Run(fmt.Sprintf("n=%d", n*n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				coo.ToCSR()
			}
		})
	}
}

func BenchmarkTranspose(b *testing.B) {
	b.ReportAllocs()
	a := benchOperator(100)
	for i := 0; i < b.N; i++ {
		a.Transpose()
	}
}

func BenchmarkMultiply(b *testing.B) {
	b.ReportAllocs()
	a := benchOperator(60)
	for i := 0; i < b.N; i++ {
		if _, err := Multiply(a, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMSRConversion(b *testing.B) {
	b.ReportAllocs()
	a := benchOperator(100)
	for i := 0; i < b.N; i++ {
		if _, err := MSRFromCSR(a); err != nil {
			b.Fatal(err)
		}
	}
}
