package sparse

import (
	"math"
	"testing"
)

// fuzzCSR decodes raw fuzz bytes into a CSR via the bounded triplet
// decoder shared with FuzzCSRFromTriplets.
func fuzzCSR(data []byte) *CSR {
	rows, cols, ri, ci, v := decodeTriplets(data)
	coo, err := NewCOOFromArrays(rows, cols, ri, ci, v)
	if err != nil {
		return nil
	}
	return coo.ToCSR()
}

// fuzzBitsEqual reports the first bit mismatch between two products.
func fuzzBitsEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: y[%d] = %g (%x), want %g (%x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// FuzzSELLFromCSR drives the CSR→SELL-C-σ converter with arbitrary
// matrices and chunk heights: the result must validate, round-trip to
// the identical CSR, and reproduce the CSR product bit for bit
// (including MulVecAdd and the pooled binding's serial path).
func FuzzSELLFromCSR(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{3, 3, 0, 0, 1, 0, 0, 0, 1, 1, 2, 0, 0, 0, 2, 2, 3, 0, 0, 0}, uint8(2))
	f.Add([]byte{32, 32, 5, 9, 255, 1, 2, 3, 0, 9, 4, 4, 4, 4, 31, 31, 1, 0, 0, 128}, uint8(1))
	f.Add([]byte{16, 1, 0, 0, 1, 1, 1, 1, 15, 0, 2, 2, 2, 2}, uint8(33))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		a := fuzzCSR(data)
		if a == nil {
			return
		}
		s := SELLFromCSR(a, int(chunk)%40) // 0 selects the default
		if err := s.Validate(); err != nil {
			t.Fatalf("converted SELL fails validation: %v", err)
		}
		if !s.ToCSR().Equal(a) {
			t.Fatal("SELL -> CSR round trip changed the matrix")
		}
		x := make([]float64, a.Cols)
		for j := range x {
			x[j] = float64(j%5) - 2.25
		}
		want := make([]float64, a.Rows)
		a.MulVec(want, x)
		got := make([]float64, a.Rows)
		s.MulVec(got, x)
		fuzzBitsEqual(t, "SELL.MulVec", got, want)

		a.MulVecAdd(want, x)
		s.MulVecAdd(got, x)
		fuzzBitsEqual(t, "SELL.MulVecAdd", got, want)

		var k ParSpMV
		k.BindSELL(s, false, 1)
		k.Apply(nil, got, x)
		wantMul := make([]float64, a.Rows)
		a.MulVec(wantMul, x)
		fuzzBitsEqual(t, "ParSpMV/SELL", got, wantMul)
	})
}

// FuzzBCSRFromCSR drives the CSR→cache-blocked-CSR converter with
// arbitrary matrices and stripe widths under the same contract:
// validation, exact round trip, and bit-identical products.
func FuzzBCSRFromCSR(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{3, 3, 0, 0, 1, 0, 0, 0, 1, 1, 2, 0, 0, 0, 2, 2, 3, 0, 0, 0}, uint8(1))
	f.Add([]byte{8, 32, 0, 31, 255, 255, 0, 1, 7, 0, 9, 9, 9, 9, 3, 17, 1, 2, 3, 4}, uint8(7))
	f.Add([]byte{32, 32, 5, 9, 255, 1, 2, 3, 0, 9, 4, 4, 4, 4, 31, 31, 1, 0, 0, 128}, uint8(40))
	f.Fuzz(func(t *testing.T, data []byte, stripe uint8) {
		a := fuzzCSR(data)
		if a == nil {
			return
		}
		b := BCSRFromCSR(a, int(stripe)%40) // 0 selects the default
		if err := b.Validate(); err != nil {
			t.Fatalf("converted BCSR fails validation: %v", err)
		}
		if !b.ToCSR().Equal(a) {
			t.Fatal("BCSR -> CSR round trip changed the matrix")
		}
		x := make([]float64, a.Cols)
		for j := range x {
			x[j] = float64(j%5) - 2.25
		}
		want := make([]float64, a.Rows)
		a.MulVec(want, x)
		got := make([]float64, a.Rows)
		b.MulVec(got, x)
		fuzzBitsEqual(t, "BCSR.MulVec", got, want)

		a.MulVecAdd(want, x)
		b.MulVecAdd(got, x)
		fuzzBitsEqual(t, "BCSR.MulVecAdd", got, want)

		var k ParSpMV
		k.BindBCSR(b, true)
		wantAdd := append([]float64(nil), want...)
		a.MulVecAdd(wantAdd, x)
		k.Apply(nil, got, x)
		fuzzBitsEqual(t, "ParSpMV/BCSR-add", got, wantAdd)
	})
}
