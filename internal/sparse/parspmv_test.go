package sparse_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/par"
	"repro/internal/sparse"
)

func randomCSR(t *testing.T, rng *rand.Rand, rows, cols int) *sparse.CSR {
	t.Helper()
	coo := sparse.NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		for _, j := range rng.Perm(cols)[:1+rng.Intn(min(cols, 6))] {
			coo.Append(i, j, rng.NormFloat64())
		}
	}
	return coo.ToCSR()
}

// TestParSpMVBitwiseMatchesSerial pins the row-partition determinism
// argument: pooled SpMV equals the serial kernel bit for bit, for every
// worker count, in both the overwrite and accumulate forms and for MSR.
func TestParSpMVBitwiseMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(t, rng, 257, 101)
	x := make([]float64, 101)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, 257)
	a.MulVec(want, x)
	wantAdd := make([]float64, 257)
	for i := range wantAdd {
		wantAdd[i] = float64(i) * 0.125
	}
	a.MulVecAdd(wantAdd, x)

	for _, w := range []int{1, 2, 4, 7} {
		p := par.New(w)
		var k sparse.ParSpMV
		k.BindCSR(a, false)
		got := make([]float64, 257)
		k.Apply(p, got, x)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("w=%d: MulVec row %d: %x != %x", w, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
		k.BindCSR(a, true)
		for i := range got {
			got[i] = float64(i) * 0.125
		}
		k.Apply(p, got, x)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(wantAdd[i]) {
				t.Fatalf("w=%d: MulVecAdd row %d differs", w, i)
			}
		}
		p.Close()
	}

	// MSR: diagonal + wings.
	n := 300
	val := make([]float64, n+1, 3*n)
	ind := make([]int, n+1, 3*n)
	for i := 0; i < n; i++ {
		val[i] = 4
	}
	ptr := n + 1
	for i := 0; i < n; i++ {
		ind[i] = ptr
		if i > 0 {
			val = append(val, -1)
			ind = append(ind, i-1)
			ptr++
		}
		if i < n-1 {
			val = append(val, -1)
			ind = append(ind, i+1)
			ptr++
		}
	}
	ind[n] = ptr
	m, err := sparse.NewMSR(n, val, ind)
	if err != nil {
		t.Fatalf("NewMSR: %v", err)
	}
	xm := make([]float64, n)
	for i := range xm {
		xm[i] = rng.NormFloat64()
	}
	wantM := make([]float64, n)
	m.MulVec(wantM, xm)
	for _, w := range []int{1, 4} {
		p := par.New(w)
		var k sparse.ParSpMV
		k.BindMSR(m)
		got := make([]float64, n)
		k.Apply(p, got, xm)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(wantM[i]) {
				t.Fatalf("w=%d: MSR row %d differs", w, i)
			}
		}
		p.Close()
	}
}
