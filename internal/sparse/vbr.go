package sparse

import "fmt"

// VBR is the variable-block-row format: the matrix is partitioned into
// block rows and block columns, and only nonzero blocks are stored. The
// layout follows the SPARSKIT/Aztec convention:
//
//	RPntr[0..nbr]  — row partition; block row I spans rows RPntr[I]:RPntr[I+1]
//	CPntr[0..nbc]  — column partition
//	BPntr[0..nbr]  — BPntr[I]:BPntr[I+1] indexes BInd/Indx for block row I
//	BInd[k]        — block-column index of stored block k
//	Indx[k]        — offset of block k's values in Val (Indx has len nblk+1)
//	Val            — block entries, column-major within each block
type VBR struct {
	RPntr []int
	CPntr []int
	BPntr []int
	BInd  []int
	Indx  []int
	Val   []float64
}

// Dims returns the global (rows, cols).
func (a *VBR) Dims() (int, int) {
	return a.RPntr[len(a.RPntr)-1], a.CPntr[len(a.CPntr)-1]
}

// NNZ returns the number of stored (block-padded) entries.
func (a *VBR) NNZ() int { return len(a.Val) }

// NumBlockRows returns the number of block rows.
func (a *VBR) NumBlockRows() int { return len(a.RPntr) - 1 }

// Validate checks structural consistency.
func (a *VBR) Validate() error {
	nbr := len(a.RPntr) - 1
	nbc := len(a.CPntr) - 1
	if nbr < 0 || nbc < 0 {
		return fmt.Errorf("sparse: VBR: empty partitions")
	}
	if len(a.BPntr) != nbr+1 {
		return fmt.Errorf("sparse: VBR: BPntr length %d, want %d", len(a.BPntr), nbr+1)
	}
	nblk := a.BPntr[nbr]
	if len(a.BInd) != nblk {
		return fmt.Errorf("sparse: VBR: BInd length %d, want %d", len(a.BInd), nblk)
	}
	if len(a.Indx) != nblk+1 {
		return fmt.Errorf("sparse: VBR: Indx length %d, want %d", len(a.Indx), nblk+1)
	}
	for I := 0; I < nbr; I++ {
		if a.RPntr[I] > a.RPntr[I+1] {
			return fmt.Errorf("sparse: VBR: RPntr not monotone at %d", I)
		}
		for k := a.BPntr[I]; k < a.BPntr[I+1]; k++ {
			J := a.BInd[k]
			if J < 0 || J >= nbc {
				return fmt.Errorf("sparse: VBR: block column %d out of range", J)
			}
			br := a.RPntr[I+1] - a.RPntr[I]
			bc := a.CPntr[J+1] - a.CPntr[J]
			if a.Indx[k+1]-a.Indx[k] != br*bc {
				return fmt.Errorf("sparse: VBR: block %d has %d values, want %dx%d", k, a.Indx[k+1]-a.Indx[k], br, bc)
			}
		}
	}
	if a.Indx[nblk] != len(a.Val) {
		return fmt.Errorf("sparse: VBR: Indx[end] = %d, want %d", a.Indx[nblk], len(a.Val))
	}
	return nil
}

// MulVec computes y = A*x.
func (a *VBR) MulVec(y, x []float64) {
	rows, cols := a.Dims()
	checkDims("VBR.MulVec x", cols, len(x))
	checkDims("VBR.MulVec y", rows, len(y))
	for i := range y {
		y[i] = 0
	}
	nbr := len(a.RPntr) - 1
	for I := 0; I < nbr; I++ {
		r0, r1 := a.RPntr[I], a.RPntr[I+1]
		br := r1 - r0
		for k := a.BPntr[I]; k < a.BPntr[I+1]; k++ {
			J := a.BInd[k]
			c0, c1 := a.CPntr[J], a.CPntr[J+1]
			blk := a.Val[a.Indx[k]:a.Indx[k+1]]
			// column-major block: blk[r + c*br]
			for c := 0; c < c1-c0; c++ {
				xc := x[c0+c]
				if xc == 0 {
					continue
				}
				col := blk[c*br : (c+1)*br]
				for r := 0; r < br; r++ {
					y[r0+r] += col[r] * xc
				}
			}
		}
	}
}

// mulBlockRows is the order-exact kernel over block rows [lo, hi): each
// scalar row accumulates across its stored blocks in ascending
// block-column order and ascending columns within each block, with no
// zero-skip — the serial CSR accumulation sequence whenever the blocks
// carry no padding (the perfect-fill condition UniformBlocks detects).
// It is the ParSpMV hook; block rows write disjoint slices of y.
func (a *VBR) mulBlockRows(y, x []float64, lo, hi int, add bool) {
	for I := lo; I < hi; I++ {
		r0, r1 := a.RPntr[I], a.RPntr[I+1]
		br := r1 - r0
		k0, k1 := a.BPntr[I], a.BPntr[I+1]
		for r := 0; r < br; r++ {
			s := 0.0
			for k := k0; k < k1; k++ {
				J := a.BInd[k]
				c0 := a.CPntr[J]
				bc := a.CPntr[J+1] - c0
				blk := a.Val[a.Indx[k]:a.Indx[k+1]]
				for c := 0; c < bc; c++ {
					s += blk[c*br+r] * x[c0+c]
				}
			}
			if add {
				y[r0+r] += s
			} else {
				y[r0+r] = s
			}
		}
	}
}

// UniformBlocks looks for a square block size b (largest of the given
// candidates, DefaultUniformBlockSizes when none) such that the matrix
// tiles exactly into b×b blocks that are each either fully stored or
// fully absent. Under that perfect-fill condition a VBR built on the
// even b-partition carries no padding, so the order-exact VBR kernel
// is bitwise-identical to CSR — the only condition under which the
// autotuner enrolls VBR as a candidate.
func UniformBlocks(a *CSR, sizes ...int) (int, bool) {
	if len(sizes) == 0 {
		sizes = DefaultUniformBlockSizes
	}
next:
	for _, b := range sizes {
		if b < 2 || a.Rows%b != 0 || a.Cols%b != 0 || a.NNZ()%(b*b) != 0 {
			continue
		}
		for i := 0; i < a.Rows; i++ {
			lo, hi := a.RowPtr[i], a.RowPtr[i+1]
			if (hi-lo)%b != 0 {
				continue next
			}
			for k := lo; k < hi; k += b {
				// Each group of b consecutive entries must cover one
				// full block width [J*b, (J+1)*b).
				c := a.ColInd[k]
				if c%b != 0 || a.ColInd[k+b-1] != c+b-1 {
					continue next
				}
			}
			// All rows of a block row must share the same block set.
			if i%b != 0 {
				pl, ph := a.RowPtr[i-1], a.RowPtr[i]
				if ph-pl != hi-lo {
					continue next
				}
				for k := 0; k < hi-lo; k += b {
					if a.ColInd[pl+k] != a.ColInd[lo+k] {
						continue next
					}
				}
			}
		}
		return b, true
	}
	return 0, false
}

// DefaultUniformBlockSizes are the block sizes UniformBlocks tries, in
// preference order.
var DefaultUniformBlockSizes = []int{4, 3, 2}

// EvenPartition returns the pointer array {0, b, 2b, …, n} cutting n
// indices into blocks of b (the final block holds any remainder).
func EvenPartition(n, b int) []int {
	if b < 1 {
		b = 1
	}
	p := make([]int, 0, n/b+2)
	for i := 0; i < n; i += b {
		p = append(p, i)
	}
	p = append(p, n)
	return p
}

// ToCSR expands the blocks to scalar CSR entries, dropping exact zeros
// introduced by block padding.
func (a *VBR) ToCSR() *CSR {
	rows, cols := a.Dims()
	coo := NewCOO(rows, cols)
	nbr := len(a.RPntr) - 1
	for I := 0; I < nbr; I++ {
		r0, r1 := a.RPntr[I], a.RPntr[I+1]
		br := r1 - r0
		for k := a.BPntr[I]; k < a.BPntr[I+1]; k++ {
			J := a.BInd[k]
			c0, c1 := a.CPntr[J], a.CPntr[J+1]
			blk := a.Val[a.Indx[k]:a.Indx[k+1]]
			for c := 0; c < c1-c0; c++ {
				for r := 0; r < br; r++ {
					if v := blk[c*br+r]; v != 0 {
						coo.Append(r0+r, c0+c, v)
					}
				}
			}
		}
	}
	return coo.ToCSR()
}

// VBRFromCSR converts a CSR matrix to VBR using the given row and column
// partitions. Blocks that contain at least one nonzero are stored densely
// (zero padding inside stored blocks).
func VBRFromCSR(a *CSR, rpntr, cpntr []int) (*VBR, error) {
	if len(rpntr) < 1 || rpntr[0] != 0 || rpntr[len(rpntr)-1] != a.Rows {
		return nil, fmt.Errorf("sparse: VBRFromCSR: row partition must span [0,%d]", a.Rows)
	}
	if len(cpntr) < 1 || cpntr[0] != 0 || cpntr[len(cpntr)-1] != a.Cols {
		return nil, fmt.Errorf("sparse: VBRFromCSR: column partition must span [0,%d]", a.Cols)
	}
	nbr := len(rpntr) - 1
	nbc := len(cpntr) - 1
	// Map scalar column -> block column.
	col2blk := make([]int, a.Cols)
	for J := 0; J < nbc; J++ {
		if cpntr[J] > cpntr[J+1] {
			return nil, fmt.Errorf("sparse: VBRFromCSR: column partition not monotone at %d", J)
		}
		for c := cpntr[J]; c < cpntr[J+1]; c++ {
			col2blk[c] = J
		}
	}
	// Pass 1: size everything up front — which blocks exist per block
	// row and the total padded value count — so the fill pass below
	// never grows a slice. present/blkPos are dense per-block-column
	// scratch reused across block rows (maps would also make the block
	// order depend on iteration order).
	v := &VBR{RPntr: rpntr, CPntr: cpntr, BPntr: make([]int, nbr+1)}
	present := make([]bool, nbc)
	blkPos := make([]int, nbc) // block col -> offset of its values
	nblk, nval := 0, 0
	for I := 0; I < nbr; I++ {
		if rpntr[I] > rpntr[I+1] {
			return nil, fmt.Errorf("sparse: VBRFromCSR: row partition not monotone at %d", I)
		}
		r0, r1 := rpntr[I], rpntr[I+1]
		br := r1 - r0
		for i := r0; i < r1; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				present[col2blk[a.ColInd[k]]] = true
			}
		}
		for J := 0; J < nbc; J++ {
			if present[J] {
				present[J] = false
				nblk++
				nval += br * (cpntr[J+1] - cpntr[J])
			}
		}
	}
	v.BInd = make([]int, 0, nblk)
	v.Indx = make([]int, 1, nblk+1)
	v.Val = make([]float64, nval)

	// Pass 2: fill. Blocks are appended in ascending block-column order
	// within each block row, into the preallocated arrays.
	pos := 0
	for I := 0; I < nbr; I++ {
		r0, r1 := rpntr[I], rpntr[I+1]
		br := r1 - r0
		for i := r0; i < r1; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				present[col2blk[a.ColInd[k]]] = true
			}
		}
		for J := 0; J < nbc; J++ {
			if !present[J] {
				continue
			}
			present[J] = false
			bc := cpntr[J+1] - cpntr[J]
			blkPos[J] = pos
			pos += br * bc
			v.BInd = append(v.BInd, J)
			v.Indx = append(v.Indx, pos)
		}
		for i := r0; i < r1; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColInd[k]
				J := col2blk[j]
				v.Val[blkPos[J]+(j-cpntr[J])*br+(i-r0)] = a.Vals[k]
			}
		}
		v.BPntr[I+1] = len(v.BInd)
	}
	return v, nil
}
