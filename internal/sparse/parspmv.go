package sparse

import "repro/internal/par"

// ParSpMV is a reusable worker-pool SpMV kernel bound to one CSR or MSR
// operand. Row-partitioned SpMV is bitwise-identical to the serial
// MulVec for any worker count — each row's accumulation sequence is
// unchanged, only which worker runs it varies — so callers may switch
// freely between Apply and the serial kernels.
//
// Bind at Setup time and call Apply per product: the task struct is the
// persistent par.Task, so the dispatch path performs no allocation.
type ParSpMV struct {
	csr *CSR
	msr *MSR
	add bool
	y   []float64
	x   []float64
}

// BindCSR points the kernel at a CSR operand. With add set, Apply
// computes y += A·x (the ghost-column update in pmat.Apply); otherwise
// y = A·x.
func (t *ParSpMV) BindCSR(a *CSR, add bool) {
	t.csr, t.msr, t.add = a, nil, add
}

// BindMSR points the kernel at an MSR operand (y = A·x).
func (t *ParSpMV) BindMSR(a *MSR) {
	t.csr, t.msr, t.add = nil, a, false
}

// Apply runs the bound product on p's workers (inline when p is nil or
// serial). It matches the corresponding serial kernel's checkDims
// panics bit for bit as well as its arithmetic.
func (t *ParSpMV) Apply(p *par.Pool, y, x []float64) {
	rows := 0
	switch {
	case t.csr != nil:
		// Constant operands keep the dimension checks allocation-free
		// (a runtime op+" x" concatenation would cost 2 allocs per
		// Apply and break the steady-state invariant).
		opX, opY := "CSR.MulVec x", "CSR.MulVec y"
		if t.add {
			opX, opY = "CSR.MulVecAdd x", "CSR.MulVecAdd y"
		}
		checkDims(opX, t.csr.Cols, len(x))
		checkDims(opY, t.csr.Rows, len(y))
		rows = t.csr.Rows
	case t.msr != nil:
		checkDims("MSR.MulVec x", t.msr.N, len(x))
		checkDims("MSR.MulVec y", t.msr.N, len(y))
		rows = t.msr.N
	default:
		panic("sparse: ParSpMV.Apply before Bind")
	}
	t.y, t.x = y, x
	p.Run(rows, t)
	t.y, t.x = nil, nil
}

// Range computes the bound product for rows [lo, hi). It is the
// par.Task hook; each row accumulates into a local and writes its own
// slot of y, so slots share nothing.
func (t *ParSpMV) Range(_, lo, hi int) {
	x, y := t.x, t.y
	if a := t.csr; a != nil {
		for i := lo; i < hi; i++ {
			s := 0.0
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				s += a.Vals[k] * x[a.ColInd[k]]
			}
			if t.add {
				y[i] += s
			} else {
				y[i] = s
			}
		}
		return
	}
	a := t.msr
	for i := lo; i < hi; i++ {
		s := a.Val[i] * x[i]
		for k := a.Ind[i]; k < a.Ind[i+1]; k++ {
			s += a.Val[k] * x[a.Ind[k]]
		}
		y[i] = s
	}
}
