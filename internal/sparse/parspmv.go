package sparse

import "repro/internal/par"

// ParSpMV is a reusable worker-pool SpMV kernel bound to one sparse
// operand — CSR, MSR (diag-first or order-exact), SELL-C-σ, cache-
// blocked CSR, or VBR. The partition unit follows the format (rows for
// CSR/MSR/BCSR, chunks for SELL, block rows for VBR) and every row's
// accumulation sequence is unchanged for any worker count, so all
// order-exact bindings are bitwise-identical to the serial CSR kernels
// and callers may switch freely between Apply and the serial paths.
// (BindMSR keeps the legacy diag-first MSR order and matches
// MSR.MulVec instead.)
//
// Bind at Setup time and call Apply per product: the task struct is the
// persistent par.Task and owns all per-slot scratch, so the dispatch
// path performs no allocation.
type ParSpMV struct {
	csr  *CSR
	msr  *MSR
	sell *SELL
	bcsr *BCSR
	vbr  *VBR

	// msrSplit, when non-nil alongside msr, selects the order-exact MSR
	// kernel: msrSplit[i] is the absolute Val/Ind index where row i's
	// diagonal term belongs in ascending-column order, or -1 when the
	// source CSR stored no diagonal entry (see MSROrderedFromCSR).
	msrSplit []int

	add bool
	y   []float64
	x   []float64

	// scratch backs the per-slot accumulators: slots*C lanes for SELL,
	// the full row range for BCSR add-mode partial sums (row-partitioned,
	// so slots write disjoint segments). Sized at bind time.
	scratch []float64
	slots   int
}

func (t *ParSpMV) reset() {
	t.csr, t.msr, t.sell, t.bcsr, t.vbr = nil, nil, nil, nil, nil
	t.msrSplit = nil
	t.scratch = nil
	t.slots = 0
}

// BindCSR points the kernel at a CSR operand. With add set, Apply
// computes y += A·x (the ghost-column update in pmat.Apply); otherwise
// y = A·x.
func (t *ParSpMV) BindCSR(a *CSR, add bool) {
	t.reset()
	t.csr, t.add = a, add
}

// BindMSR points the kernel at an MSR operand (y = A·x) with the
// legacy diag-first accumulation order of MSR.MulVec.
func (t *ParSpMV) BindMSR(a *MSR) {
	t.reset()
	t.msr = a
}

// BindMSROrdered points the kernel at an MSR operand using the
// order-exact kernel: each row accumulates in ascending column order
// with the diagonal merged at split[i], reproducing the serial CSR
// bits. Build the pair with MSROrderedFromCSR.
func (t *ParSpMV) BindMSROrdered(a *MSR, split []int, add bool) {
	t.reset()
	t.msr, t.msrSplit, t.add = a, split, add
}

// BindSELL points the kernel at a SELL-C-σ operand. workers sizes the
// per-slot accumulator scratch (≤ 1 for a serial-only binding).
func (t *ParSpMV) BindSELL(a *SELL, add bool, workers int) {
	t.reset()
	if workers < 1 {
		workers = 1
	}
	t.sell, t.add = a, add
	t.slots = workers
	t.scratch = make([]float64, workers*a.C)
}

// BindBCSR points the kernel at a cache-blocked CSR operand. Add mode
// carries a full-length partial-sum scratch so each row still lands
// with a single y[i] += of its complete sum.
func (t *ParSpMV) BindBCSR(a *BCSR, add bool) {
	t.reset()
	t.bcsr, t.add = a, add
	if add {
		t.scratch = make([]float64, a.Rows)
	}
}

// BindVBR points the kernel at a VBR operand using the order-exact
// kernel (ascending blocks, ascending columns within each block, no
// zero-skip). The product is bitwise-identical to the source CSR only
// when the blocks carry no padding — the perfect-fill condition
// UniformBlocks detects — which is the only way the autotuner enrolls
// VBR.
func (t *ParSpMV) BindVBR(a *VBR, add bool) {
	t.reset()
	t.vbr, t.add = a, add
}

// Format reports the bound operand's storage format (FmtCSR when
// nothing is bound yet, matching the zero value's legacy behavior).
func (t *ParSpMV) Format() Format {
	switch {
	case t.sell != nil:
		return FmtSELL
	case t.bcsr != nil:
		return FmtBCSR
	case t.vbr != nil:
		return FmtVBR
	case t.msr != nil:
		return FmtMSR
	default:
		return FmtCSR
	}
}

// Apply runs the bound product on p's workers (inline when p is nil or
// serial). It matches the corresponding serial kernel's checkDims
// panics bit for bit as well as its arithmetic.
func (t *ParSpMV) Apply(p *par.Pool, y, x []float64) {
	units := 0
	switch {
	case t.csr != nil:
		// Constant operands keep the dimension checks allocation-free
		// (a runtime op+" x" concatenation would cost 2 allocs per
		// Apply and break the steady-state invariant).
		opX, opY := "CSR.MulVec x", "CSR.MulVec y"
		if t.add {
			opX, opY = "CSR.MulVecAdd x", "CSR.MulVecAdd y"
		}
		checkDims(opX, t.csr.Cols, len(x))
		checkDims(opY, t.csr.Rows, len(y))
		units = t.csr.Rows
	case t.msr != nil:
		checkDims("MSR.MulVec x", t.msr.N, len(x))
		checkDims("MSR.MulVec y", t.msr.N, len(y))
		units = t.msr.N
	case t.sell != nil:
		opX, opY := "SELL.MulVec x", "SELL.MulVec y"
		if t.add {
			opX, opY = "SELL.MulVecAdd x", "SELL.MulVecAdd y"
		}
		checkDims(opX, t.sell.Cols, len(x))
		checkDims(opY, t.sell.Rows, len(y))
		units = t.sell.NumChunks()
	case t.bcsr != nil:
		opX, opY := "BCSR.MulVec x", "BCSR.MulVec y"
		if t.add {
			opX, opY = "BCSR.MulVecAdd x", "BCSR.MulVecAdd y"
		}
		checkDims(opX, t.bcsr.Cols, len(x))
		checkDims(opY, t.bcsr.Rows, len(y))
		units = t.bcsr.Rows
	case t.vbr != nil:
		rows, cols := t.vbr.Dims()
		opX, opY := "VBR.MulVec x", "VBR.MulVec y"
		if t.add {
			opX, opY = "VBR.MulVecAdd x", "VBR.MulVecAdd y"
		}
		checkDims(opX, cols, len(x))
		checkDims(opY, rows, len(y))
		units = t.vbr.NumBlockRows()
	default:
		panic("sparse: ParSpMV.Apply before Bind")
	}
	t.y, t.x = y, x
	p.Run(units, t)
	t.y, t.x = nil, nil
}

// Range computes the bound product for partition units [lo, hi) — rows,
// SELL chunks, or VBR block rows depending on the binding. It is the
// par.Task hook; every unit writes a disjoint slice of y (and of the
// slot scratch), so slots share nothing.
func (t *ParSpMV) Range(slot, lo, hi int) {
	x, y := t.x, t.y
	switch {
	case t.csr != nil:
		a := t.csr
		for i := lo; i < hi; i++ {
			s := 0.0
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				s += a.Vals[k] * x[a.ColInd[k]]
			}
			if t.add {
				y[i] += s
			} else {
				y[i] = s
			}
		}
	case t.msr != nil && t.msrSplit == nil:
		a := t.msr
		for i := lo; i < hi; i++ {
			s := a.Val[i] * x[i]
			for k := a.Ind[i]; k < a.Ind[i+1]; k++ {
				s += a.Val[k] * x[a.Ind[k]]
			}
			y[i] = s
		}
	case t.msr != nil:
		a := t.msr
		for i := lo; i < hi; i++ {
			s := 0.0
			end := a.Ind[i+1]
			sp := t.msrSplit[i]
			for k := a.Ind[i]; k < end; k++ {
				if k == sp {
					s += a.Val[i] * x[i]
				}
				s += a.Val[k] * x[a.Ind[k]]
			}
			if sp == end {
				s += a.Val[i] * x[i]
			}
			if t.add {
				y[i] += s
			} else {
				y[i] = s
			}
		}
	case t.sell != nil:
		a := t.sell
		acc := t.scratch[slot*a.C : (slot+1)*a.C]
		for ch := lo; ch < hi; ch++ {
			r0, r1 := a.mulChunk(ch, acc, x)
			a.scatterChunk(r0, r1, acc, y, t.add)
		}
	case t.bcsr != nil:
		a := t.bcsr
		if !t.add {
			for i := lo; i < hi; i++ {
				y[i] = 0
			}
			a.mulRows(y, x, lo, hi)
			return
		}
		acc := t.scratch
		for i := lo; i < hi; i++ {
			acc[i] = 0
		}
		a.mulRows(acc, x, lo, hi)
		for i := lo; i < hi; i++ {
			y[i] += acc[i]
		}
	case t.vbr != nil:
		t.vbr.mulBlockRows(y, x, lo, hi, t.add)
	}
}
