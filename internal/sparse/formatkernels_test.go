package sparse

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/par"
)

// kernelMatrices is the property-test corpus: random (unsymmetric and
// diagonally dominant), banded, FEM-assembled, block-structured
// (perfect 3×3 fill, the VBR-eligible case), a stencil, and edge
// shapes (empty rows, rectangular, tiny). Negative zeros and denormals
// ride in via the FEM case below.
func kernelMatrices(t testing.TB) map[string]*CSR {
	fem := NewFEM(20, 20)
	for e := 0; e < 18; e++ {
		// Overlapping 3-node elements with sign-mixed entries: assembly
		// cancellation produces ±0 and tiny partial sums, the inputs
		// that catch any reassociated accumulation.
		ke := []float64{
			2, -1, -1e-30,
			-1, 2, -1,
			-1e-30, -1, 2,
		}
		if err := fem.AddElement([]int{e, e + 1, e + 2}, ke); err != nil {
			t.Fatal(err)
		}
	}

	// Block matrix with every stored 3×3 block fully dense: the
	// UniformBlocks perfect-fill case that enrolls VBR.
	blk := NewCOO(30, 30)
	for bi := 0; bi < 10; bi++ {
		for _, bj := range []int{bi - 1, bi, bi + 1} {
			if bj < 0 || bj >= 10 {
				continue
			}
			for r := 0; r < 3; r++ {
				for c := 0; c < 3; c++ {
					blk.Append(3*bi+r, 3*bj+c, float64(1+r-c)+0.5*float64(bi-bj))
				}
			}
		}
	}

	empty := NewCOO(9, 9)
	empty.Append(0, 8, -0.0)
	empty.Append(8, 0, 1e-310) // denormal

	rect := NewCOO(13, 40)
	for i := 0; i < 13; i++ {
		rect.Append(i, (7*i)%40, float64(i)-6)
		rect.Append(i, (11*i+3)%40, 0.5)
	}

	return map[string]*CSR{
		"random":    RandomUnsymmetric(90, 7, 42),
		"diagdom":   RandomDiagDominant(120, 5, 7),
		"banded":    Tridiag(100, -1.25, 4, -0.75),
		"fem":       fem.ToCSR(),
		"block3x3":  blk.ToCSR(),
		"stencil":   Laplace2D(12, 12),
		"emptyrows": empty.ToCSR(),
		"rect":      rect.ToCSR(),
		"tiny":      Identity(1),
	}
}

// bitsEqual fails the test when got differs from want in any bit.
func bitsEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: y[%d] = %x (%g), want %x (%g)",
				label, i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

// formatBindings enumerates every ParSpMV binding for one matrix that
// must be bitwise-identical to serial CSR. VBR appears only for
// perfect-fill matrices and MSR only for square ones — exactly the
// gating the autotuner applies.
func formatBindings(t testing.TB, a *CSR, add bool, workers int) map[string]*ParSpMV {
	out := map[string]*ParSpMV{}
	bind := func(name string, f func(p *ParSpMV)) {
		p := &ParSpMV{}
		f(p)
		out[name] = p
	}
	bind("csr", func(p *ParSpMV) { p.BindCSR(a, add) })
	bind("sell", func(p *ParSpMV) { p.BindSELL(SELLFromCSR(a, TunedSELLChunk(a.Rows, workers)), add, workers) })
	bind("sell-c4", func(p *ParSpMV) { p.BindSELL(SELLFromCSR(a, 4), add, workers) })
	bind("bcsr", func(p *ParSpMV) { p.BindBCSR(BCSRFromCSR(a, 0), add) })
	bind("bcsr-w16", func(p *ParSpMV) { p.BindBCSR(BCSRFromCSR(a, 16), add) })
	if a.Rows == a.Cols {
		m, split, err := MSROrderedFromCSR(a)
		if err != nil {
			t.Fatal(err)
		}
		bind("msr", func(p *ParSpMV) { p.BindMSROrdered(m, split, add) })
	}
	if b, ok := UniformBlocks(a); ok {
		v, err := VBRFromCSR(a, EvenPartition(a.Rows, b), EvenPartition(a.Cols, b))
		if err != nil {
			t.Fatal(err)
		}
		bind("vbr", func(p *ParSpMV) { p.BindVBR(v, add) })
	}
	return out
}

// TestFormatsBitwiseIdenticalToCSR is the format-autotuning
// determinism property: every format × worker count ∈ {1,2,4,7} ×
// {mul, add} reproduces the serial CSR kernel bit for bit on the whole
// matrix corpus. Run under -race this also exercises the pooled
// dispatch synchronization.
func TestFormatsBitwiseIdenticalToCSR(t *testing.T) {
	for name, a := range kernelMatrices(t) {
		t.Run(name, func(t *testing.T) {
			x := RandomVector(a.Cols, 3)
			x[0] = -0.0 // signed-zero input exercises the ±0 hazards
			y0 := RandomVector(a.Rows, 5)

			wantMul := make([]float64, a.Rows)
			a.MulVec(wantMul, x)
			wantAdd := make([]float64, a.Rows)
			copy(wantAdd, y0)
			a.MulVecAdd(wantAdd, x)

			for _, workers := range []int{1, 2, 4, 7} {
				pool := par.New(workers)
				for _, add := range []bool{false, true} {
					want := wantMul
					if add {
						want = wantAdd
					}
					for fname, k := range formatBindings(t, a, add, workers) {
						y := make([]float64, a.Rows)
						copy(y, y0)
						if !add {
							// Poison to catch kernels that skip writes.
							for i := range y {
								y[i] = math.NaN()
							}
						}
						k.Apply(pool, y, x)
						bitsEqual(t, fmt.Sprintf("%s/%s/w=%d/add=%v", name, fname, workers, add), y, want)
					}
				}
				pool.Close()
			}
		})
	}
}

// TestFormatSerialKernelsBitwise pins the serial convenience kernels
// (SELL/BCSR MulVec and MulVecAdd without a pool) to the CSR bits too.
func TestFormatSerialKernelsBitwise(t *testing.T) {
	for name, a := range kernelMatrices(t) {
		x := RandomVector(a.Cols, 11)
		want := make([]float64, a.Rows)
		a.MulVec(want, x)
		wantAdd := RandomVector(a.Rows, 13)
		base := append([]float64(nil), wantAdd...)
		a.MulVecAdd(wantAdd, x)

		s := SELLFromCSR(a, 0)
		b := BCSRFromCSR(a, 0)
		y := make([]float64, a.Rows)
		s.MulVec(y, x)
		bitsEqual(t, name+"/sell-serial", y, want)
		b.MulVec(y, x)
		bitsEqual(t, name+"/bcsr-serial", y, want)

		copy(y, base)
		s.MulVecAdd(y, x)
		bitsEqual(t, name+"/sell-serial-add", y, wantAdd)
		copy(y, base)
		b.MulVecAdd(y, x)
		bitsEqual(t, name+"/bcsr-serial-add", y, wantAdd)
	}
}

// TestFormatRoundTrips pins the converters as exact inverses: the
// structural invariants hold and ToCSR reproduces the source CSR
// entry-for-entry (bit-exact Equal, not AlmostEqual).
func TestFormatRoundTrips(t *testing.T) {
	for name, a := range kernelMatrices(t) {
		s := SELLFromCSR(a, 0)
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: SELL: %v", name, err)
		}
		if !s.ToCSR().Equal(a) {
			t.Fatalf("%s: SELL round-trip mismatch", name)
		}
		if s.NNZ() != a.NNZ() {
			t.Fatalf("%s: SELL NNZ %d, want %d", name, s.NNZ(), a.NNZ())
		}
		b := BCSRFromCSR(a, 16)
		if err := b.Validate(); err != nil {
			t.Fatalf("%s: BCSR: %v", name, err)
		}
		if !b.ToCSR().Equal(a) {
			t.Fatalf("%s: BCSR round-trip mismatch", name)
		}
	}
}

// TestUniformBlocks pins the perfect-fill detector: the block corpus
// case is eligible, padding or ragged structure is not.
func TestUniformBlocks(t *testing.T) {
	ms := kernelMatrices(t)
	if b, ok := UniformBlocks(ms["block3x3"]); !ok || b != 3 {
		t.Fatalf("block3x3: got (%d, %v), want (3, true)", b, ok)
	}
	if _, ok := UniformBlocks(ms["stencil"]); ok {
		t.Fatal("stencil: 5-point Laplacian must not be block-eligible")
	}
	if _, ok := UniformBlocks(ms["random"]); ok {
		t.Fatal("random: must not be block-eligible")
	}
	// A dense 4x4 tiles as 4 (preferred over 2).
	dense := NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			dense.Append(i, j, float64(i*4+j+1))
		}
	}
	if b, ok := UniformBlocks(dense.ToCSR()); !ok || b != 4 {
		t.Fatalf("dense4: got (%d, %v), want (4, true)", b, ok)
	}
}

// TestParseFormatChoice pins the parameter vocabulary: the five forced
// spellings parse, "vbr" (auto-only) and junk do not, and String
// round-trips.
func TestParseFormatChoice(t *testing.T) {
	for _, s := range []string{"auto", "csr", "msr", "sell", "bcsr"} {
		c, err := ParseFormatChoice(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if c.String() != s {
			t.Fatalf("%q: round-trips as %q", s, c.String())
		}
	}
	for _, s := range []string{"vbr", "", "CSR", "ellpack"} {
		if _, err := ParseFormatChoice(s); err == nil {
			t.Fatalf("%q: want error", s)
		}
	}
}

// TestProbeFormats pins the autotuner contract: the tiny fast path
// skips timing, a real probe times at least CSR/SELL/BCSR and returns
// a binding that reproduces the CSR bits, and the block corpus case
// enrolls VBR.
func TestProbeFormats(t *testing.T) {
	tiny := Tridiag(50, -1, 2, -1)
	if res := ProbeFormats(tiny, false, nil); !res.Heuristic || res.Choice != ChoiceCSR || len(res.Candidates) != 0 {
		t.Fatalf("tiny probe: %+v, want heuristic CSR", res)
	}

	a := Laplace2D(60, 60) // ~17.8k nnz, above the fast-path threshold
	res := ProbeFormats(a, false, nil)
	if res.Heuristic {
		t.Fatal("probe took the fast path on a large matrix")
	}
	if len(res.Candidates) < 3 {
		t.Fatalf("probe timed %d candidates, want ≥ 3", len(res.Candidates))
	}
	if res.Candidates[0].Format != FmtCSR {
		t.Fatalf("first candidate %v, want CSR (fixed order)", res.Candidates[0].Format)
	}
	if res.TotalNS <= 0 {
		t.Fatal("probe reported no wall time")
	}
	seen := map[Format]bool{}
	for _, c := range res.Candidates {
		if seen[c.Format] {
			t.Fatalf("candidate %v probed twice", c.Format)
		}
		seen[c.Format] = true
		if c.NS <= 0 {
			t.Fatalf("candidate %v: non-positive median %d", c.Format, c.NS)
		}
	}
	if !seen[FmtSELL] || !seen[FmtBCSR] || !seen[FmtMSR] {
		t.Fatalf("candidate set %v missing a challenger", res.Candidates)
	}
	if seen[FmtVBR] {
		t.Fatal("VBR probed on a non-block matrix")
	}

	// Perfect-fill block matrix enrolls VBR (scaled up past the
	// fast-path threshold).
	blk := NewCOO(2400, 2400)
	for bi := 0; bi < 800; bi++ {
		for _, bj := range []int{bi - 1, bi, bi + 1} {
			if bj < 0 || bj >= 800 {
				continue
			}
			for r := 0; r < 3; r++ {
				for c := 0; c < 3; c++ {
					blk.Append(3*bi+r, 3*bj+c, 1+float64(r*c)-0.25*float64(bi%5))
				}
			}
		}
	}
	bres := ProbeFormats(blk.ToCSR(), false, nil)
	found := false
	for _, c := range bres.Candidates {
		if c.Format == FmtVBR {
			found = true
		}
	}
	if !found {
		t.Fatalf("block probe candidates %v: VBR not enrolled", bres.Candidates)
	}
}
