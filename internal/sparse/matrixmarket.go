package sparse

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Matrix Market (.mtx) support: the NIST exchange format most sparse
// matrix collections (SuiteSparse, Matrix Market itself) distribute.
// The supported subset is what the LISI ingestion path needs —
// coordinate and array formats, real and integer fields, general and
// symmetric storage. Pattern and complex fields, and skew-symmetric /
// hermitian storage, are rejected with typed errors so callers (the
// service's operator spec, lisi-solve) can map them to stable error
// codes.
//
// Out-of-scope constructs fail parsing rather than being silently
// coerced: duplicate coordinate entries are an error (the legacy
// ReadCOO path sums them; an exchange file with duplicates is almost
// always a generator bug), and symmetric files must store exactly the
// lower triangle as the standard requires.

// Typed parse errors, matchable with errors.Is. Every parse failure
// wraps exactly one of these.
var (
	// ErrMMHeader: the banner line is missing or malformed.
	ErrMMHeader = errors.New("sparse: matrixmarket: malformed header")
	// ErrMMPattern: the file declares field "pattern" (structure-only,
	// no values) which cannot seed a linear system.
	ErrMMPattern = errors.New("sparse: matrixmarket: pattern matrices carry no values")
	// ErrMMUnsupported: a declared qualifier (complex field,
	// skew-symmetric or hermitian storage) is outside the supported
	// subset.
	ErrMMUnsupported = errors.New("sparse: matrixmarket: unsupported qualifier")
	// ErrMMSize: the size line is malformed, or the declared
	// dimensions/entry count exceed the ingestion caps.
	ErrMMSize = errors.New("sparse: matrixmarket: bad size line")
	// ErrMMEntry: a data line is malformed or indexes outside the
	// declared dimensions.
	ErrMMEntry = errors.New("sparse: matrixmarket: bad entry")
	// ErrMMSymmetry: a symmetric file stores an upper-triangle entry,
	// or WriteMatrixMarket was asked to write a non-symmetric matrix
	// symmetrically.
	ErrMMSymmetry = errors.New("sparse: matrixmarket: symmetry violation")
	// ErrMMDuplicate: a coordinate file lists the same (i,j) twice.
	ErrMMDuplicate = errors.New("sparse: matrixmarket: duplicate entry")
)

// Ingestion caps: a header is attacker-controlled input on the service
// path, so the declared shape is bounded before any allocation sized
// from it. The caps comfortably cover every corpus this repository
// targets while keeping a lying header from forcing a multi-GB
// allocation.
const (
	// MaxMMDim bounds each declared dimension.
	MaxMMDim = 4 << 20
	// MaxMMEntries bounds the declared entry count (and rows*cols for
	// the dense array format).
	MaxMMEntries = 1 << 27
)

// MMSymmetry selects the storage symmetry WriteMatrixMarket declares.
type MMSymmetry int

const (
	// MMGeneral writes every stored entry.
	MMGeneral MMSymmetry = iota
	// MMSymmetric writes the lower triangle only; the matrix must be
	// square and bitwise symmetric.
	MMSymmetric
)

func (s MMSymmetry) String() string {
	switch s {
	case MMGeneral:
		return "general"
	case MMSymmetric:
		return "symmetric"
	}
	return fmt.Sprintf("MMSymmetry(%d)", int(s))
}

// mmHeader is the parsed banner + size line.
type mmHeader struct {
	coordinate bool // coordinate vs array
	integer    bool // integer vs real field
	symmetric  bool // symmetric vs general storage
	rows, cols int
	nnz        int // coordinate only
}

// ReadMatrixMarket parses a Matrix Market file into a CSR matrix.
// Coordinate and array formats are accepted with real or integer
// fields and general or symmetric storage; symmetric files must store
// the lower triangle, which is mirrored into the full operator.
// Exact-zero values in array files are dropped from the sparse result.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	h, line, err := readMMHeader(sc)
	if err != nil {
		return nil, err
	}
	var coo *COO
	if h.coordinate {
		coo, err = readMMCoordinate(sc, h, line)
	} else {
		coo, err = readMMArray(sc, h, line)
	}
	if err != nil {
		return nil, err
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	stored := len(coo.Val)
	a := coo.ToCSR()
	if h.coordinate && a.NNZ() != stored {
		// ToCSR merges duplicates; a shrink means the file listed some
		// (i,j) more than once.
		return nil, fmt.Errorf("%w: %d stored entries merged to %d distinct positions",
			ErrMMDuplicate, stored, a.NNZ())
	}
	return a, nil
}

// readMMHeader consumes the banner, any comment lines, and the size
// line. It returns the parsed header and the number of lines consumed.
func readMMHeader(sc *bufio.Scanner) (mmHeader, int, error) {
	var h mmHeader
	line := 0
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return h, line, err
		}
		return h, line, fmt.Errorf("%w: empty input", ErrMMHeader)
	}
	line++
	banner := strings.Fields(strings.ToLower(strings.TrimSpace(sc.Text())))
	if len(banner) != 5 || banner[0] != "%%matrixmarket" {
		return h, line, fmt.Errorf("%w: line 1: want %q, got %q",
			ErrMMHeader, "%%MatrixMarket matrix <format> <field> <symmetry>", sc.Text())
	}
	if banner[1] != "matrix" {
		return h, line, fmt.Errorf("%w: object %q (only \"matrix\" is supported)", ErrMMUnsupported, banner[1])
	}
	switch banner[2] {
	case "coordinate":
		h.coordinate = true
	case "array":
	default:
		return h, line, fmt.Errorf("%w: line 1: unknown format %q", ErrMMHeader, banner[2])
	}
	switch banner[3] {
	case "real", "double":
	case "integer":
		h.integer = true
	case "pattern":
		return h, line, ErrMMPattern
	case "complex":
		return h, line, fmt.Errorf("%w: complex field", ErrMMUnsupported)
	default:
		return h, line, fmt.Errorf("%w: line 1: unknown field %q", ErrMMHeader, banner[3])
	}
	switch banner[4] {
	case "general":
	case "symmetric":
		h.symmetric = true
	case "skew-symmetric", "hermitian":
		return h, line, fmt.Errorf("%w: %s storage", ErrMMUnsupported, banner[4])
	default:
		return h, line, fmt.Errorf("%w: line 1: unknown symmetry %q", ErrMMHeader, banner[4])
	}

	// Comments, then the size line.
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		want := 2
		if h.coordinate {
			want = 3
		}
		if len(fields) != want {
			return h, line, fmt.Errorf("%w: line %d: want %d fields, got %d", ErrMMSize, line, want, len(fields))
		}
		var err error
		if h.rows, err = strconv.Atoi(fields[0]); err != nil {
			return h, line, fmt.Errorf("%w: line %d: %v", ErrMMSize, line, err)
		}
		if h.cols, err = strconv.Atoi(fields[1]); err != nil {
			return h, line, fmt.Errorf("%w: line %d: %v", ErrMMSize, line, err)
		}
		if h.coordinate {
			if h.nnz, err = strconv.Atoi(fields[2]); err != nil {
				return h, line, fmt.Errorf("%w: line %d: %v", ErrMMSize, line, err)
			}
		}
		if h.rows < 0 || h.cols < 0 || h.nnz < 0 {
			return h, line, fmt.Errorf("%w: line %d: negative dimension", ErrMMSize, line)
		}
		if h.rows > MaxMMDim || h.cols > MaxMMDim {
			return h, line, fmt.Errorf("%w: line %d: %dx%d exceeds the %d dimension cap",
				ErrMMSize, line, h.rows, h.cols, MaxMMDim)
		}
		if h.coordinate && h.nnz > MaxMMEntries {
			return h, line, fmt.Errorf("%w: line %d: %d entries exceeds the %d cap",
				ErrMMSize, line, h.nnz, MaxMMEntries)
		}
		if !h.coordinate && h.rows*h.cols > MaxMMEntries {
			return h, line, fmt.Errorf("%w: line %d: dense %dx%d exceeds the %d cap",
				ErrMMSize, line, h.rows, h.cols, MaxMMEntries)
		}
		if h.symmetric && h.rows != h.cols {
			return h, line, fmt.Errorf("%w: symmetric matrix is %dx%d", ErrMMSymmetry, h.rows, h.cols)
		}
		return h, line, nil
	}
	if err := sc.Err(); err != nil {
		return h, line, err
	}
	return h, line, fmt.Errorf("%w: no size line", ErrMMSize)
}

// readMMCoordinate parses "i j v" triplets (1-based). Symmetric files
// must store i >= j; off-diagonal entries are mirrored.
func readMMCoordinate(sc *bufio.Scanner, h mmHeader, line int) (*COO, error) {
	coo := NewCOO(h.rows, h.cols)
	// The header's entry count is untrusted; preallocate a bounded
	// amount and let append grow the rest.
	prealloc := h.nnz
	if h.symmetric {
		prealloc *= 2
	}
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	coo.Row = make([]int, 0, prealloc)
	coo.Col = make([]int, 0, prealloc)
	coo.Val = make([]float64, 0, prealloc)
	stored := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: line %d: want \"i j v\", got %d fields", ErrMMEntry, line, len(fields))
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrMMEntry, line, err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrMMEntry, line, err)
		}
		v, err := parseMMValue(fields[2], h.integer)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrMMEntry, line, err)
		}
		if i < 1 || i > h.rows || j < 1 || j > h.cols {
			return nil, fmt.Errorf("%w: line %d: index (%d,%d) outside %dx%d",
				ErrMMEntry, line, i, j, h.rows, h.cols)
		}
		if h.symmetric && j > i {
			return nil, fmt.Errorf("%w: line %d: symmetric file stores entry (%d,%d) above the diagonal",
				ErrMMSymmetry, line, i, j)
		}
		stored++
		if stored > h.nnz {
			return nil, fmt.Errorf("%w: line %d: more than the declared %d entries", ErrMMEntry, line, h.nnz)
		}
		coo.Append(i-1, j-1, v)
		if h.symmetric && i != j {
			coo.Append(j-1, i-1, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if stored != h.nnz {
		return nil, fmt.Errorf("%w: header promised %d entries, found %d", ErrMMEntry, h.nnz, stored)
	}
	return coo, nil
}

// readMMArray parses the dense array format: column-major values, one
// per line (extra whitespace-separated values per line are accepted).
// Symmetric array files store each column from the diagonal down.
// Exact zeros are dropped from the sparse result.
func readMMArray(sc *bufio.Scanner, h mmHeader, line int) (*COO, error) {
	want := h.rows * h.cols
	if h.symmetric {
		want = h.rows * (h.rows + 1) / 2
	}
	coo := NewCOO(h.rows, h.cols)
	got := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		for _, field := range strings.Fields(text) {
			if got >= want {
				return nil, fmt.Errorf("%w: line %d: more than the expected %d values", ErrMMEntry, line, want)
			}
			v, err := parseMMValue(field, h.integer)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrMMEntry, line, err)
			}
			i, j := arrayPosition(got, h)
			// A dense listing stores structural zeros; keep the result
			// genuinely sparse. (Bit comparison: only +0 is dropped,
			// which avoids a float equality the vet floateq analyzer
			// would flag.)
			if math.Float64bits(v) != 0 {
				coo.Append(i, j, v)
				if h.symmetric && i != j {
					coo.Append(j, i, v)
				}
			}
			got++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("%w: expected %d values, found %d", ErrMMEntry, want, got)
	}
	return coo, nil
}

// arrayPosition maps the k-th stored array value to its 0-based (i,j).
// General files store full columns; symmetric files store each column
// from the diagonal down.
func arrayPosition(k int, h mmHeader) (i, j int) {
	if !h.symmetric {
		return k % h.rows, k / h.rows
	}
	// Column j holds rows - j values; walk columns until k lands.
	for col := 0; col < h.cols; col++ {
		span := h.rows - col
		if k < span {
			return col + k, col
		}
		k -= span
	}
	panic("sparse: matrixmarket: array position out of range")
}

func parseMMValue(s string, integer bool) (float64, error) {
	if integer {
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, err
		}
		return float64(v), nil
	}
	// The standard permits Fortran-style exponents (1.0D+00).
	if i := strings.IndexAny(s, "dD"); i >= 0 {
		s = s[:i] + "e" + s[i+1:]
	}
	return strconv.ParseFloat(s, 64)
}

// WriteMatrixMarket writes m as a Matrix Market coordinate real file.
// With MMSymmetric the matrix must be square and bitwise symmetric;
// only the lower triangle is stored. Values print with %.17g so every
// finite float64 round-trips exactly.
func WriteMatrixMarket(w io.Writer, m Matrix, sym MMSymmetry) error {
	rows, cols := m.Dims()
	coo := toCOO(m)
	row, col, val := coo.Row, coo.Col, coo.Val
	if sym == MMSymmetric {
		if rows != cols {
			return fmt.Errorf("%w: cannot write %dx%d matrix as symmetric", ErrMMSymmetry, rows, cols)
		}
		a := coo.ToCSR()
		if !a.Equal(a.Transpose()) {
			return fmt.Errorf("%w: matrix is not bitwise symmetric", ErrMMSymmetry)
		}
		lower := a.ToCOO()
		row = row[:0:0]
		col = col[:0:0]
		val = val[:0:0]
		for k := range lower.Val {
			if lower.Row[k] >= lower.Col[k] {
				row = append(row, lower.Row[k])
				col = append(col, lower.Col[k])
				val = append(val, lower.Val[k])
			}
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real %s\n%d %d %d\n",
		sym, rows, cols, len(val)); err != nil {
		return err
	}
	for k := range val {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", row[k]+1, col[k]+1, val[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMatrixAuto reads a matrix from either a strict Matrix Market
// file (banner present — parsed by ReadMatrixMarket, so symmetric
// storage and typed rejections apply) or the legacy banner-less
// coordinate text accepted by ReadCOO. This is the ingestion entry
// point for lisi-solve and corpus loading.
func ReadMatrixAuto(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	peek, err := br.Peek(len(mmBanner))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if strings.EqualFold(string(peek), mmBanner) {
		return ReadMatrixMarket(br)
	}
	coo, err := ReadCOO(br)
	if err != nil {
		return nil, err
	}
	return coo.ToCSR(), nil
}

const mmBanner = "%%MatrixMarket"
