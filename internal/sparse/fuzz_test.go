package sparse

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeTriplets turns raw fuzz bytes into a bounded triplet set: the
// first two bytes size the matrix (1..32 each), then each 6-byte chunk
// decodes one (row, col, val) triplet. Indices are reduced mod the
// dimensions, so every decoded set is in range by construction — the
// fuzz target probes conversion/validation logic, not the documented
// panic on out-of-range Append.
func decodeTriplets(data []byte) (rows, cols int, ri, ci []int, v []float64) {
	if len(data) < 2 {
		return 1, 1, nil, nil, nil
	}
	rows = int(data[0])%32 + 1
	cols = int(data[1])%32 + 1
	data = data[2:]
	for len(data) >= 6 && len(v) < 512 {
		ri = append(ri, int(data[0])%rows)
		ci = append(ci, int(data[1])%cols)
		bits := uint64(binary.LittleEndian.Uint32(data[2:6]))
		// Spread a 32-bit pattern over negative/positive small floats;
		// avoid NaN/Inf so MulVec comparisons stay meaningful.
		val := float64(int32(bits)) / 1024.0
		v = append(v, val)
		data = data[6:]
	}
	return rows, cols, ri, ci, v
}

// FuzzCSRFromTriplets drives the COO→CSR conversion with arbitrary
// triplet sets (duplicates, empty rows, unsorted columns) and checks
// the structural CSR invariants plus numeric agreement between the COO
// and CSR operator applications.
func FuzzCSRFromTriplets(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 3, 0, 0, 1, 0, 0, 0, 1, 1, 2, 0, 0, 0, 2, 2, 3, 0, 0, 0})
	// Duplicate entries at one coordinate: conversion must sum them.
	f.Add([]byte{2, 2, 1, 1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0})
	f.Add([]byte{255, 255, 7, 9, 255, 255, 255, 255, 7, 9, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, cols, ri, ci, v := decodeTriplets(data)
		coo, err := NewCOOFromArrays(rows, cols, ri, ci, v)
		if err != nil {
			t.Fatalf("in-range triplets rejected: %v", err)
		}
		a := coo.ToCSR()

		// Structural invariants, via the validating constructor: a CSR
		// produced by conversion must be accepted by NewCSR verbatim.
		if _, err := NewCSR(a.Rows, a.Cols, a.RowPtr, a.ColInd, a.Vals); err != nil {
			t.Fatalf("ToCSR output fails NewCSR validation: %v", err)
		}
		if a.Rows != rows || a.Cols != cols {
			t.Fatalf("dims changed: %dx%d -> %dx%d", rows, cols, a.Rows, a.Cols)
		}
		if a.NNZ() > len(v) {
			t.Fatalf("conversion grew nnz: %d triplets -> %d entries", len(v), a.NNZ())
		}
		for i := 0; i < a.Rows; i++ {
			for p := a.RowPtr[i] + 1; p < a.RowPtr[i+1]; p++ {
				if a.ColInd[p-1] >= a.ColInd[p] {
					t.Fatalf("row %d columns not strictly sorted: %v", i, a.ColInd[a.RowPtr[i]:a.RowPtr[i+1]])
				}
			}
		}

		// Metamorphic check: the COO and CSR forms are the same operator.
		x := make([]float64, cols)
		for j := range x {
			x[j] = float64(j%7) - 3
		}
		yCOO := make([]float64, rows)
		yCSR := make([]float64, rows)
		coo.MulVec(yCOO, x)
		a.MulVec(yCSR, x)
		for i := range yCOO {
			diff := math.Abs(yCOO[i] - yCSR[i])
			scale := math.Abs(yCOO[i]) + math.Abs(yCSR[i]) + 1
			if diff/scale > 1e-12 {
				t.Fatalf("row %d: COO*x = %g, CSR*x = %g", i, yCOO[i], yCSR[i])
			}
		}

		// Round trip: CSR→COO→CSR is the identity on canonical form.
		b := a.ToCOO().ToCSR()
		if !a.Equal(b) {
			t.Fatal("CSR -> COO -> CSR changed the matrix")
		}
	})
}

// FuzzNewCSRValidation throws arbitrary rowPtr/colInd structures at the
// validating constructor: it must return an error or a usable matrix,
// never panic and never accept a structurally broken one.
func FuzzNewCSRValidation(f *testing.F) {
	f.Add([]byte{2, 2}, []byte{0, 1, 2}, []byte{0, 1})
	f.Add([]byte{1, 1}, []byte{0, 5}, []byte{9})
	f.Add([]byte{3, 2}, []byte{0, 2, 1, 2}, []byte{0, 1})
	f.Fuzz(func(t *testing.T, dims, rp, ciBytes []byte) {
		if len(dims) < 2 {
			return
		}
		rows := int(dims[0]) % 8
		cols := int(dims[1]) % 8
		rowPtr := make([]int, len(rp))
		for i, b := range rp {
			rowPtr[i] = int(b) - 2 // negatives reachable
		}
		colInd := make([]int, len(ciBytes))
		vals := make([]float64, len(ciBytes))
		for i, b := range ciBytes {
			colInd[i] = int(b) - 2
			vals[i] = float64(b)
		}
		a, err := NewCSR(rows, cols, rowPtr, colInd, vals)
		if err != nil {
			return
		}
		// Accepted: the matrix must be safely usable.
		x := make([]float64, cols)
		y := make([]float64, rows)
		a.MulVec(y, x)
		_ = a.NNZ()
	})
}
