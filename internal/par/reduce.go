package par

import "math"

// reduceBlock is the element count per reduction slot. The slot layout
// of a length-n reduction is a function of n alone, so the fold tree is
// identical for every worker count — that, plus folding the slots in
// ascending order on the caller, is what makes pooled reductions
// bitwise-deterministic. For n <= reduceBlock there is a single slot
// and the result is bit-identical to the plain serial loop, which keeps
// a 1-worker pooled solve exactly on today's serial arithmetic for
// every local block the test problems use.
const reduceBlock = 2048

// ReduceSlots returns the number of fixed-size partial slots a
// length-n reduction uses.
func ReduceSlots(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + reduceBlock - 1) / reduceBlock
}

// dotTask computes one partial dot product per slot cell.
type dotTask struct {
	a, b []float64
	out  []float64
}

func (t *dotTask) Range(_, lo, hi int) {
	for s := lo; s < hi; s++ {
		start := s * reduceBlock
		end := start + reduceBlock
		if end > len(t.a) {
			end = len(t.a)
		}
		t.out[s] = serialDot(t.a[start:end], t.b[start:end])
	}
}

// Dot returns a·b with the fixed-slot layout: each slot's partial is a
// plain left-to-right sum over its block, and the slots fold in
// ascending order. A nil pool (or a single-slot vector) degenerates to
// the serial sum, bit-identical to sparse.Dot.
func (p *Pool) Dot(a, b []float64) float64 {
	if p == nil {
		return serialDot(a, b)
	}
	s := ReduceSlots(len(a))
	if s == 0 {
		return 0
	}
	if s == 1 {
		p.inline++
		return serialDot(a, b)
	}
	parts := p.reserve(s)
	t := &p.dot
	t.a, t.b, t.out = a, b, parts
	p.Run(s, t)
	t.a, t.b, t.out = nil, nil, nil
	sum := parts[0]
	for _, v := range parts[1:s] {
		sum += v
	}
	return sum
}

// serialDot mirrors sparse.Dot's exact accumulation order (par cannot
// import sparse: sparse's pooled SpMV imports par).
func serialDot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// normTask computes one (scale, ssq) pair per slot, interleaved in out.
type normTask struct {
	x   []float64
	out []float64
}

func (t *normTask) Range(_, lo, hi int) {
	for s := lo; s < hi; s++ {
		start := s * reduceBlock
		end := start + reduceBlock
		if end > len(t.x) {
			end = len(t.x)
		}
		scale, ssq := scaledSSQ(t.x[start:end])
		t.out[2*s], t.out[2*s+1] = scale, ssq
	}
}

// Norm2 returns the overflow-guarded Euclidean norm with the fixed-slot
// layout: each slot runs the serial scale/ssq recurrence over its
// block, and the per-slot pairs combine in ascending slot order. A nil
// pool (or a single-slot vector) is bit-identical to sparse.Norm2.
func (p *Pool) Norm2(x []float64) float64 {
	if p == nil {
		return serialNorm2(x)
	}
	s := ReduceSlots(len(x))
	if s == 0 {
		return 0
	}
	if s == 1 {
		p.inline++
		return serialNorm2(x)
	}
	parts := p.reserve(2 * s)
	t := &p.nrm
	t.x, t.out = x, parts
	p.Run(s, t)
	t.x, t.out = nil, nil
	scale, ssq := parts[0], parts[1]
	for k := 1; k < s; k++ {
		s2, q2 := parts[2*k], parts[2*k+1]
		if s2 == 0 {
			continue
		}
		if scale < s2 {
			r := scale / s2
			ssq = q2 + ssq*r*r
			scale = s2
		} else {
			r := s2 / scale
			ssq += q2 * r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// scaledSSQ is the body of sparse.Norm2's recurrence: a running scale
// and a scaled sum of squares, skipping exact zeros.
func scaledSSQ(x []float64) (scale, ssq float64) {
	scale, ssq = 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale, ssq
}

func serialNorm2(x []float64) float64 {
	scale, ssq := scaledSSQ(x)
	return scale * math.Sqrt(ssq)
}
