package par_test

import (
	"testing"

	"repro/internal/par"
)

// FuzzLevels decodes arbitrary bytes into a random dependency pattern
// and asserts the level-set builders' invariants: Ptr is a monotone
// cover of [0, n], Order is a permutation, rows are ascending within a
// level, and every honored dependency lands in a strictly earlier
// level (the property the parallel triangular solves rely on).
func FuzzLevels(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{8, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7})
	f.Add([]byte{16, 3, 1, 5, 4, 15, 0, 9, 9, 2, 7})
	f.Add([]byte{63, 255, 254, 253, 0, 1, 2, 40, 41, 42, 42, 40})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			if lv := par.LowerLevels(0, func(int, func(int)) {}); lv.NumLevels() != 0 || len(lv.Order) != 0 {
				t.Fatalf("empty system: ptr %v order %v", lv.Ptr, lv.Order)
			}
			return
		}
		n := 1 + int(data[0])%64
		deps := make([][]int, n)
		for k := 1; k+1 < len(data); k += 2 {
			i := int(data[k]) % n
			j := int(data[k+1]) % n
			deps[i] = append(deps[i], j)
		}
		depsOf := func(i int, visit func(int)) {
			for _, j := range deps[i] {
				visit(j)
			}
		}
		checkLevels(t, "lower", n, par.LowerLevels(n, depsOf), deps, func(i, j int) bool { return j < i })
		checkLevels(t, "upper", n, par.UpperLevels(n, depsOf), deps, func(i, j int) bool { return j > i })
	})
}

func checkLevels(t *testing.T, kind string, n int, lv *par.Levels, deps [][]int, honored func(i, j int) bool) {
	t.Helper()
	if lv.Ptr[0] != 0 || lv.Ptr[len(lv.Ptr)-1] != n || len(lv.Order) != n {
		t.Fatalf("%s: ptr %v does not cover %d rows (order len %d)", kind, lv.Ptr, n, len(lv.Order))
	}
	levelOf := make([]int, n)
	seen := make([]bool, n)
	for l := 0; l < lv.NumLevels(); l++ {
		if lv.Ptr[l] > lv.Ptr[l+1] {
			t.Fatalf("%s: ptr not monotone: %v", kind, lv.Ptr)
		}
		rows := lv.Level(l)
		for k, i := range rows {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("%s: order is not a permutation: row %d (order %v)", kind, i, lv.Order)
			}
			seen[i] = true
			levelOf[i] = l
			if k > 0 && rows[k-1] >= i {
				t.Fatalf("%s: level %d not ascending: %v", kind, l, rows)
			}
		}
	}
	for i := 0; i < n; i++ {
		for _, j := range deps[i] {
			if honored(i, j) && levelOf[j] >= levelOf[i] {
				t.Fatalf("%s: dep %d of row %d scheduled at level %d >= %d", kind, j, i, levelOf[j], levelOf[i])
			}
		}
	}
}
