// Package par is the intra-rank parallelism layer: a deterministic
// worker pool (the second parallelism level under internal/comm, per
// ROADMAP item 2 and ShyLU-node's on-node solver design), fixed-slot
// partial reductions, and a level-set scheduler for sparse triangular
// solves.
//
// Determinism contract (docs/PERFORMANCE.md "Two-level parallelism"):
// every kernel dispatched on a Pool must produce bitwise-identical
// results for any worker count, including 1. Two mechanisms deliver
// that:
//
//   - Row-partitioned kernels (SpMV, level-scheduled triangular solves,
//     element-wise smoother updates) perform each output element's
//     arithmetic in the same sequence regardless of which worker runs
//     the row, so any static partition is bitwise-neutral by
//     construction.
//
//   - Reductions (Dot, Norm2) accumulate into fixed slots whose layout
//     depends only on the vector length — never on the worker count —
//     and fold the per-slot partials in ascending slot order on the
//     caller after the join.
//
// Workers never touch internal/comm: all communication stays on the
// rank goroutine that owns the pool. Pools are Setup-time artifacts
// (built once per "workers" parameter value, cached by the component
// caches keyed on cfgVer) and their dispatch path performs no
// allocation, preserving the steady-state 0 allocs/op invariant.
package par

// Task is one parallel operation dispatched on a Pool. Range processes
// the contiguous unit range [lo, hi) as dispatch slot slot. Range
// methods run concurrently on pool workers and must not communicate,
// must not write state shared with other slots, and must not fold
// floating-point values into shared accumulators — accumulate into a
// per-slot partial and fold after Run returns (the spmddet analyzer
// enforces this shape on any Range(int, int, int) method).
type Task interface {
	Range(slot, lo, hi int)
}

// fanoutMin is the unit count below which Run executes inline: waking a
// worker costs more than a handful of rows, and inline execution is
// bitwise-identical anyway.
const fanoutMin = 4

// Pool is a fixed-size intra-rank worker pool. A Pool is owned by one
// rank goroutine; Run may only be called from that goroutine, one
// dispatch at a time. The zero of *Pool (nil) is a valid serial pool:
// every method falls back to inline execution.
type Pool struct {
	workers int

	// Dispatch state for the in-flight Run, published to workers by the
	// wake-channel send and read back after the done-channel receive.
	units  int
	wEff   int
	task   Task
	wake   []chan struct{} // one per helper worker (ids 1..workers-1)
	done   chan struct{}
	panics []any // per-slot panic capture, re-raised on the caller
	closed bool

	// Persistent reduction tasks and their slot-partial scratch; grown
	// on first use, reused forever after (0 allocs at steady state).
	dot      dotTask
	nrm      normTask
	partials []float64

	// Telemetry counters (read via Stats).
	dispatches int64
	inline     int64
}

// New builds a pool of w workers. w < 1 is treated as 1. For w == 1 no
// goroutines are spawned and every Run executes inline; for w > 1 the
// w-1 helper workers park on their wake channels until Close.
func New(w int) *Pool {
	if w < 1 {
		w = 1
	}
	p := &Pool{workers: w}
	if w > 1 {
		p.wake = make([]chan struct{}, w-1)
		p.done = make(chan struct{}, w-1)
		p.panics = make([]any, w)
		for i := range p.wake {
			p.wake[i] = make(chan struct{})
			go p.worker(i + 1)
		}
	}
	return p
}

// Workers returns the pool's worker count (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Parallel reports whether dispatches can actually fan out. Structural
// kernels (SpMV, triangular solves) use it to keep the plain serial
// code path when fanning out cannot help; that switch is bitwise-
// neutral because row-partitioned kernels do not change any element's
// arithmetic sequence.
func (p *Pool) Parallel() bool { return p != nil && p.workers > 1 }

// Run partitions the unit range [0, n) statically across the workers
// (slot k gets [k*n/w, (k+1)*n/w)) and blocks until every slot's
// Range call returns. If any slot panics, Run re-panics the lowest
// slot's value on the caller after all workers have joined. Run on a
// nil pool, a 1-worker pool, or a tiny n executes t.Range(0, 0, n)
// inline on the caller.
func (p *Pool) Run(n int, t Task) {
	if n <= 0 {
		return
	}
	if p == nil {
		t.Range(0, 0, n)
		return
	}
	if p.workers == 1 || n < fanoutMin {
		p.inline++
		t.Range(0, 0, n)
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	p.units, p.wEff, p.task = n, w, t
	for i := 1; i < w; i++ {
		p.wake[i-1] <- struct{}{}
	}
	p.runSlot(0)
	for i := 1; i < w; i++ {
		<-p.done
	}
	p.task = nil
	p.dispatches++
	for i := 0; i < w; i++ {
		if r := p.panics[i]; r != nil {
			for j := range p.panics {
				p.panics[j] = nil
			}
			panic(r)
		}
	}
}

// runSlot executes one slot's share of the in-flight task, capturing a
// panic into the slot's cell so Run can re-raise it deterministically.
func (p *Pool) runSlot(slot int) {
	defer func() {
		if r := recover(); r != nil {
			p.panics[slot] = r
		}
	}()
	if slot >= p.wEff {
		return
	}
	n, w := p.units, p.wEff
	p.task.Range(slot, slot*n/w, (slot+1)*n/w)
}

// worker is the parked helper loop for slots 1..workers-1.
func (p *Pool) worker(id int) {
	for range p.wake[id-1] {
		p.runSlot(id)
		p.done <- struct{}{}
	}
}

// Close releases the helper goroutines. The pool must be idle; Run
// after Close panics. Close on a nil or serial pool is a no-op, and
// closing twice is safe.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.wake {
		close(ch)
	}
}

// Stats returns cumulative dispatch counters: fan-outs that engaged
// helper workers and runs executed inline (serial pool or tiny n).
// Reductions that collapse to a single slot count as inline.
func (p *Pool) Stats() (dispatches, inline int64) {
	if p == nil {
		return 0, 0
	}
	return p.dispatches, p.inline
}

// reserve returns n persistent scratch cells for slot partials.
func (p *Pool) reserve(n int) []float64 {
	if cap(p.partials) < n {
		p.partials = make([]float64, n)
	}
	return p.partials[:n]
}
