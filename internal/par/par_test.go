package par_test

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/par"
	"repro/internal/sparse"
)

// coverTask records which slot processed each unit.
type coverTask struct {
	slotOf []int
}

func (t *coverTask) Range(slot, lo, hi int) {
	for i := lo; i < hi; i++ {
		t.slotOf[i] = slot
	}
}

func TestRunCoversAllUnitsOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 7} {
		p := par.New(w)
		for _, n := range []int{0, 1, 3, 4, 5, 16, 17, 100} {
			ct := &coverTask{slotOf: make([]int, n)}
			for i := range ct.slotOf {
				ct.slotOf[i] = -1
			}
			p.Run(n, ct)
			prev := 0
			for i, s := range ct.slotOf {
				if s < 0 {
					t.Fatalf("w=%d n=%d: unit %d not processed", w, n, i)
				}
				if s < prev {
					t.Fatalf("w=%d n=%d: unit %d in slot %d after slot %d (partition not contiguous)", w, n, i, s, prev)
				}
				prev = s
			}
		}
		p.Close()
	}
}

func TestRunNilPoolInline(t *testing.T) {
	var p *par.Pool
	ct := &coverTask{slotOf: make([]int, 10)}
	p.Run(10, ct)
	for i, s := range ct.slotOf {
		if s != 0 {
			t.Fatalf("nil pool: unit %d ran in slot %d", i, s)
		}
	}
	if p.Workers() != 1 || p.Parallel() {
		t.Fatalf("nil pool: Workers=%d Parallel=%v", p.Workers(), p.Parallel())
	}
	p.Close() // must not panic
}

type panicTask struct{}

func (panicTask) Range(slot, lo, hi int) {
	if slot == 1 {
		panic("slot 1 boom")
	}
}

func TestRunPropagatesWorkerPanic(t *testing.T) {
	p := par.New(4)
	defer p.Close()
	defer func() {
		if r := recover(); r != "slot 1 boom" {
			t.Fatalf("recovered %v, want slot 1 boom", r)
		}
	}()
	p.Run(100, panicTask{})
}

func TestRunUsableAfterPanic(t *testing.T) {
	p := par.New(4)
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.Run(100, panicTask{})
	}()
	ct := &coverTask{slotOf: make([]int, 50)}
	p.Run(50, ct)
	for i, s := range ct.slotOf {
		if s < 0 {
			t.Fatalf("unit %d not processed after panic recovery", i)
		}
	}
}

func TestCloseReleasesWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	pools := make([]*par.Pool, 8)
	for i := range pools {
		pools[i] = par.New(4)
	}
	for _, p := range pools {
		p.Run(1000, &coverTask{slotOf: make([]int, 1000)})
		p.Close()
		p.Close() // idempotent
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after Close", before, now)
	}
}

// TestReductionsBitwiseAcrossWorkers is the core determinism contract:
// Dot and Norm2 produce identical bits for every worker count, on
// vector lengths spanning one slot, slot boundaries, and many slots.
func TestReductionsBitwiseAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 7, 2047, 2048, 2049, 4096, 10000} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		ref := par.New(1)
		refDot := ref.Dot(a, b)
		refNorm := ref.Norm2(a)
		ref.Close()
		for _, w := range []int{2, 4, 7} {
			p := par.New(w)
			if d := p.Dot(a, b); math.Float64bits(d) != math.Float64bits(refDot) {
				t.Errorf("n=%d w=%d: Dot=%x want %x", n, w, math.Float64bits(d), math.Float64bits(refDot))
			}
			if nm := p.Norm2(a); math.Float64bits(nm) != math.Float64bits(refNorm) {
				t.Errorf("n=%d w=%d: Norm2=%x want %x", n, w, math.Float64bits(nm), math.Float64bits(refNorm))
			}
			p.Close()
		}
	}
}

// TestReductionsMatchSerialForSingleSlot pins the compatibility edge the
// default path depends on: up to one slot block, pooled reductions are
// bit-identical to the legacy serial kernels for any worker count.
func TestReductionsMatchSerialForSingleSlot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 100, 2048} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
			b[i] = rng.NormFloat64()
		}
		for _, w := range []int{1, 4} {
			p := par.New(w)
			if d, s := p.Dot(a, b), sparse.Dot(a, b); math.Float64bits(d) != math.Float64bits(s) {
				t.Errorf("n=%d w=%d: pooled Dot %x != sparse.Dot %x", n, w, math.Float64bits(d), math.Float64bits(s))
			}
			if d, s := p.Norm2(a), sparse.Norm2(a); math.Float64bits(d) != math.Float64bits(s) {
				t.Errorf("n=%d w=%d: pooled Norm2 %x != sparse.Norm2 %x", n, w, math.Float64bits(d), math.Float64bits(s))
			}
			p.Close()
		}
	}
}

func TestNorm2OverflowGuard(t *testing.T) {
	n := 5000
	x := make([]float64, n)
	for i := range x {
		x[i] = 1e300
	}
	want := 1e300 * math.Sqrt(float64(n))
	for _, w := range []int{1, 4} {
		p := par.New(w)
		got := p.Norm2(x)
		if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-12 {
			t.Errorf("w=%d: Norm2 overflow guard broken: got %g want %g", w, got, want)
		}
		p.Close()
	}
}

func TestRunSteadyStateAllocs(t *testing.T) {
	p := par.New(4)
	defer p.Close()
	n := 10000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i%13) * 0.25
		b[i] = float64(i%7) * 0.5
	}
	ct := &coverTask{slotOf: make([]int, n)}
	// Warm up the partials scratch, then demand zero allocations.
	p.Dot(a, b)
	p.Norm2(a)
	sink := 0.0
	allocs := testing.AllocsPerRun(100, func() {
		p.Run(n, ct)
		sink += p.Dot(a, b)
		sink += p.Norm2(a)
	})
	if allocs != 0 {
		t.Fatalf("steady-state dispatch allocates: %v allocs/op (sink %v)", allocs, sink)
	}
}

func TestLevelsLowerChainAndDiag(t *testing.T) {
	// Rows: 0 and 1 independent; 2 depends on 1; 3 depends on 2 and 0.
	deps := [][]int{nil, nil, {1}, {0, 2}}
	lv := par.LowerLevels(4, func(i int, visit func(int)) {
		for _, j := range deps[i] {
			visit(j)
		}
	})
	wantOrder := []int{0, 1, 2, 3}
	wantPtr := []int{0, 2, 3, 4}
	if len(lv.Order) != 4 || len(lv.Ptr) != 4 {
		t.Fatalf("levels: order %v ptr %v", lv.Order, lv.Ptr)
	}
	for i := range wantOrder {
		if lv.Order[i] != wantOrder[i] {
			t.Fatalf("order %v, want %v", lv.Order, wantOrder)
		}
	}
	for i := range wantPtr {
		if lv.Ptr[i] != wantPtr[i] {
			t.Fatalf("ptr %v, want %v", lv.Ptr, wantPtr)
		}
	}
	// A diagonal (no deps at all) collapses to a single level.
	diag := par.LowerLevels(6, func(int, func(int)) {})
	if diag.NumLevels() != 1 || len(diag.Level(0)) != 6 {
		t.Fatalf("diagonal levels: %v / %v", diag.Ptr, diag.Order)
	}
}

func TestLevelsUpperChain(t *testing.T) {
	// Backward solve: row i depends on i+1 (a full bidiagonal) → n levels,
	// scheduled n-1 first.
	n := 5
	lv := par.UpperLevels(n, func(i int, visit func(int)) {
		visit(i + 1)
	})
	if lv.NumLevels() != n {
		t.Fatalf("want %d levels, got %d (ptr %v)", n, lv.NumLevels(), lv.Ptr)
	}
	for l := 0; l < n; l++ {
		rows := lv.Level(l)
		if len(rows) != 1 || rows[0] != n-1-l {
			t.Fatalf("level %d = %v, want [%d]", l, rows, n-1-l)
		}
	}
}

func TestLevelsIgnoreOutOfDirectionVisits(t *testing.T) {
	// depsOf may pass a row's full pattern; only j < i counts for lower,
	// only j > i for upper.
	lv := par.LowerLevels(3, func(i int, visit func(int)) {
		visit(i) // self
		visit(i + 1)
		visit(-1)
	})
	if lv.NumLevels() != 1 {
		t.Fatalf("lower levels with no true deps: %v", lv.Ptr)
	}
	uv := par.UpperLevels(3, func(i int, visit func(int)) {
		visit(i)
		visit(i - 1)
		visit(99)
	})
	if uv.NumLevels() != 1 {
		t.Fatalf("upper levels with no true deps: %v", uv.Ptr)
	}
}
