package par

// Levels is a level-set schedule for a sparse triangular solve: the DAG
// of row dependencies is sliced into levels such that every row's
// dependencies live in strictly earlier levels, so all rows of one
// level can run in parallel. Order lists the row indices grouped by
// level (ascending within each level, so a fixed partition of a level
// is stable), and level l occupies Order[Ptr[l]:Ptr[l+1]].
//
// Level sets are Setup-time artifacts: build them once per factor (the
// factor's structure is immutable after factorization) and reuse them
// for every solve.
type Levels struct {
	Order []int
	Ptr   []int
}

// NumLevels returns the number of dependency levels.
func (lv *Levels) NumLevels() int { return len(lv.Ptr) - 1 }

// Level returns the row indices of level l.
func (lv *Levels) Level(l int) []int { return lv.Order[lv.Ptr[l]:lv.Ptr[l+1]] }

// LowerLevels computes the level sets of a forward (lower-triangular)
// solve over rows 0..n-1: depsOf must call visit(j) for each structural
// dependency j < i of row i — the prior solution entries row i's sweep
// reads. Visits outside [0, i) are ignored, so callers can pass a row's
// full pattern.
func LowerLevels(n int, depsOf func(i int, visit func(j int))) *Levels {
	if n <= 0 {
		return &Levels{Ptr: []int{0}}
	}
	level := make([]int, n)
	maxl := 0
	for i := 0; i < n; i++ {
		l := 0
		depsOf(i, func(j int) {
			if j < 0 || j >= i {
				return
			}
			if d := level[j] + 1; d > l {
				l = d
			}
		})
		level[i] = l
		if l > maxl {
			maxl = l
		}
	}
	return bucketLevels(level, maxl)
}

// UpperLevels computes the level sets of a backward (upper-triangular)
// solve over rows n-1..0: depsOf must call visit(j) for each structural
// dependency j > i of row i. Visits outside (i, n) are ignored.
func UpperLevels(n int, depsOf func(i int, visit func(j int))) *Levels {
	if n <= 0 {
		return &Levels{Ptr: []int{0}}
	}
	level := make([]int, n)
	maxl := 0
	for i := n - 1; i >= 0; i-- {
		l := 0
		depsOf(i, func(j int) {
			if j <= i || j >= n {
				return
			}
			if d := level[j] + 1; d > l {
				l = d
			}
		})
		level[i] = l
		if l > maxl {
			maxl = l
		}
	}
	return bucketLevels(level, maxl)
}

// bucketLevels counting-sorts rows by level, keeping ascending row
// order within each level.
func bucketLevels(level []int, maxl int) *Levels {
	ptr := make([]int, maxl+2)
	for _, l := range level {
		ptr[l+1]++
	}
	for l := 0; l <= maxl; l++ {
		ptr[l+1] += ptr[l]
	}
	order := make([]int, len(level))
	next := make([]int, maxl+1)
	copy(next, ptr[:maxl+1])
	for i, l := range level {
		order[next[l]] = i
		next[l]++
	}
	return &Levels{Order: order, Ptr: ptr}
}
