// Package service is the solver-as-a-service front end: a long-running
// HTTP+JSON surface over the internal/core registry and Session
// lifecycle (docs/SERVICE.md). It pools one SPMD world + Session per
// (tenant, backend, operator version) so repeated solves against the
// same operator ride the zero-allocation steady-state path (the
// component's distVer/cfgVer caches stay warm across requests), applies
// admission control with bounded queues and typed 429/503 load
// shedding, enforces per-tenant quotas, coalesces queued requests that
// share an operator into one multi-RHS solve, and drains gracefully on
// SIGTERM. Injected faults (internal/fault specs, compiled in only
// under the faultinject build tag) surface as typed JSON error statuses
// carrying FailReason/Attempts/Backend — never as hangs — extending the
// chaos-suite guarantees across the network boundary.
package service

import (
	"fmt"
	"net/http"

	"repro/internal/telemetry"
)

// Typed error codes of the service wire contract. Clients branch on
// Code, never on Message; the HTTP status is derived from the code
// (429 for per-tenant pressure, 503 for server-wide shedding).
const (
	// CodeBadRequest: malformed body, dimensions, or argument ranges.
	CodeBadRequest = "bad_request"
	// CodeUnknownBackend: backend (or failover) name not in the registry.
	CodeUnknownBackend = "unknown_backend"
	// CodeOperatorMissing: the operator id@version is not pooled and the
	// request carried neither a matrix nor a generator to build it.
	CodeOperatorMissing = "operator_missing"
	// CodeOperatorConflict: the request's operator payload disagrees
	// with the one already pooled under the same id@version.
	CodeOperatorConflict = "operator_conflict"
	// CodeTenantQuota: the tenant exceeded its pending-request quota (429).
	CodeTenantQuota = "tenant_quota_exceeded"
	// CodeQueueFull: the operator's session queue is at capacity (429).
	CodeQueueFull = "queue_full"
	// CodeOverloaded: the server-wide pending cap is reached (503).
	CodeOverloaded = "overloaded"
	// CodeDraining: the server is draining after SIGTERM; new work is
	// shed (503) while in-flight solves finish.
	CodeDraining = "draining"
	// CodePoolFull: the session pool is at capacity and every pooled
	// session is busy, so nothing can be evicted (503).
	CodePoolFull = "pool_full"
	// CodeServerClosed: drain has completed; the instance serves nothing.
	CodeServerClosed = "server_closed"
	// CodeSetupFailed: the backend rejected the staged operator or
	// parameters when the pooled session was built.
	CodeSetupFailed = "setup_failed"
	// CodeSolveAborted: the solve was killed mid-flight — injected
	// fault, per-solve deadline, or caller cancellation. FailReason,
	// AbortReason, Attempts and Backend identify the typed cause.
	CodeSolveAborted = "solve_aborted"
	// CodeSessionAborted: the request was queued on a pooled session
	// whose world another request's abort poisoned; retryable — the
	// next request rebuilds the session.
	CodeSessionAborted = "session_aborted"
	// CodeFaultDisabled: a fault spec was supplied but injection is not
	// enabled (or not compiled in: it exists only under the faultinject
	// build tag).
	CodeFaultDisabled = "fault_injection_disabled"
	// CodeBadFaultSpec: the fault spec did not parse (fault.ParseSpec).
	CodeBadFaultSpec = "bad_fault_spec"
)

// Error is the typed JSON error body ({"error": {...}} on the wire).
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Retryable hints that an identical request may succeed later
	// (load shedding, a poisoned session that the next request rebuilds).
	Retryable bool `json:"retryable,omitempty"`

	// Solve classification, set when the error reports a killed solve
	// (CodeSolveAborted): the session layer's typed FailReason, the
	// abort cause, how many backend runs were attempted, and which
	// backend produced the result.
	FailReason  string `json:"fail_reason,omitempty"`
	AbortReason string `json:"abort_reason,omitempty"`
	Attempts    int    `json:"attempts,omitempty"`
	Backend     string `json:"backend,omitempty"`

	httpStatus int
}

// Error implements error.
func (e *Error) Error() string { return e.Code + ": " + e.Message }

// HTTPStatus returns the HTTP status the error is served with.
func (e *Error) HTTPStatus() int {
	if e.httpStatus == 0 {
		return http.StatusInternalServerError
	}
	return e.httpStatus
}

func errf(code string, status int, retryable bool, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...), Retryable: retryable, httpStatus: status}
}

// MatrixPayload is an explicit CSR operator on the wire — the LIS-style
// call shape: arbitrary CSR in, options map, solve. Column indices are
// global; the server block-row partitions the matrix over the session's
// ranks.
type MatrixPayload struct {
	N      int       `json:"n"`
	RowPtr []int     `json:"rowptr"`
	ColInd []int     `json:"colind"`
	Vals   []float64 `json:"vals"`
}

// OperatorRef names the operator a request solves against. ID and
// Version key the session pool (together with tenant, backend, procs
// and parameters): the first request for a key must carry the operator
// body (Matrix, or GridN for the paper's §8[a] model problem); later
// requests may omit it and reuse the pooled, already-factorized
// session.
type OperatorRef struct {
	ID      string `json:"id"`
	Version int    `json:"version,omitempty"`
	// GridN builds the paper's 2-D model problem with GridN² unknowns
	// server-side (mesh.PaperProblem) — the scenario-ingestion path.
	GridN int `json:"grid_n,omitempty"`
	// Matrix is an explicit global CSR operator (exclusive with GridN).
	Matrix *MatrixPayload `json:"matrix,omitempty"`
	// MatrixMarket is a Matrix Market (.mtx) file, verbatim — the
	// exchange-format ingestion path (exclusive with GridN and Matrix).
	// Coordinate/array formats with real/integer fields and
	// general/symmetric storage are accepted; pattern and complex
	// files are rejected as bad requests.
	MatrixMarket string `json:"matrix_market,omitempty"`
}

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	// Tenant namespaces quotas, pooled sessions and telemetry.
	Tenant string `json:"tenant"`
	// Backend is the registry name (petsc, trilinos, superlu, mg, ...).
	Backend string `json:"backend"`
	// Params are LISI key=value parameters applied at session open.
	Params map[string]string `json:"params,omitempty"`
	// Procs is the SPMD world size of the pooled session (default 1).
	Procs int `json:"procs,omitempty"`
	// Workers is the intra-rank worker-pool size for the backend's hot
	// kernels (second parallelism level under the SPMD ranks; default
	// from the server's -workers flag, normally 1). Results are
	// bitwise-identical for every worker count, so this is a pure
	// performance knob; it is part of the session-pool key.
	Workers int `json:"workers,omitempty"`
	// Format selects the local SpMV storage format for the backend's
	// distributed products: "auto" (probe at setup), "csr", "msr",
	// "sell", or "bcsr"; empty takes the server's -format flag
	// (normally csr). Every format is bitwise-identical to CSR, so this
	// is a pure performance knob; it is part of the session-pool key.
	Format string `json:"format,omitempty"`

	Operator OperatorRef `json:"operator"`

	// RHS holds NRHS right-hand sides of N values each, back to back;
	// omitted means all ones.
	RHS  []float64 `json:"rhs,omitempty"`
	NRHS int       `json:"nrhs,omitempty"`

	// ReturnSolution includes the solution vector(s) in the response.
	ReturnSolution bool `json:"return_solution,omitempty"`
	// Telemetry includes this request's per-phase SolveReport in the
	// response and records it in the aggregate expvar sink.
	Telemetry bool `json:"telemetry,omitempty"`

	// MaxAttempts and Failover configure the pooled session's
	// resilience policy (core.SessionOptions); they are part of the
	// pool key, so requests with different policies use different
	// sessions.
	MaxAttempts int      `json:"max_attempts,omitempty"`
	Failover    []string `json:"failover,omitempty"`

	// FaultSpec injects a deterministic fault schedule
	// (fault.ParseSpec syntax; also settable via the X-Lisi-Fault-Spec
	// header) into a dedicated, unpooled session for this request.
	// Honored only when the server enables fault injection AND the
	// binary was built with the faultinject tag; chaos testing only.
	FaultSpec string `json:"fault_spec,omitempty"`

	poolKey string // memoized pool key; recomputed for each decoded request
}

// SolveResponse is the body of a completed solve (HTTP 200). A solver
// that terminated with a typed non-converged FailReason is still a 200:
// the solve ran to a classified end; only transport, admission and
// aborted solves are Error statuses.
type SolveResponse struct {
	Tenant          string `json:"tenant"`
	Backend         string `json:"backend"` // backend that produced the result (≠ request after failover)
	OperatorID      string `json:"operator_id"`
	OperatorVersion int    `json:"operator_version"`

	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`
	Converged  bool    `json:"converged"`
	FailReason string  `json:"fail_reason"`
	Attempts   int     `json:"attempts"`

	// SessionReused reports the request hit an already-built pooled
	// session: no operator staging, no refactorization — the
	// zero-allocation steady-state path.
	SessionReused bool `json:"session_reused"`
	// Batched/BatchNRHS report server-side coalescing: this solve was
	// merged with queued requests sharing the operator into one
	// multi-RHS backend run of BatchNRHS right-hand sides (the
	// iteration/residual fields then describe the merged run).
	Batched    bool    `json:"batched,omitempty"`
	BatchNRHS  int     `json:"batch_nrhs,omitempty"`
	NRHS       int     `json:"nrhs"`
	SolveWallS float64 `json:"solve_wall_s"`

	Solution []float64              `json:"solution,omitempty"`
	Report   *telemetry.SolveReport `json:"report,omitempty"`
}
