//go:build faultinject

// Service-layer chaos suite (chaos builds only): seeded fault specs
// injected mid-request must surface as typed JSON error statuses
// carrying FailReason/Attempts/Backend — never hangs — and must never
// damage traffic that did not ask for faults. This extends the
// internal/chaos Session-outcome guarantees across the network
// boundary. Replay a failing seed locally:
//
//	CHAOS_SEED=<seed> go test -tags faultinject ./internal/service -run TestServiceChaos -v
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/service"
)

// chaosSeeds mirrors the internal/chaos idiom: CHAOS_SEED pins one
// seed (CI matrix and replays), otherwise a fixed default set.
func chaosSeeds(t *testing.T) []int64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q is not an integer", v)
		}
		return []int64{s}
	}
	return []int64{1, 7, 42}
}

// solveWatchdog runs one request under a hang guard: a chaos request
// may fail in any typed way, but it must always come back.
func solveWatchdog(t *testing.T, svc *service.Service, req *service.SolveRequest) (*service.SolveResponse, *service.Error) {
	t.Helper()
	type out struct {
		resp *service.SolveResponse
		err  *service.Error
	}
	ch := make(chan out, 1)
	go func() {
		resp := &service.SolveResponse{}
		serr := svc.Solve(context.Background(), req, resp)
		ch <- out{resp, serr}
	}()
	select {
	case o := <-ch:
		return o.resp, o.err
	case <-time.After(90 * time.Second):
		t.Fatalf("service solve hung under fault spec %q", req.FaultSpec)
		return nil, nil
	}
}

func chaosReq(tenant string, spec string) *service.SolveRequest {
	return &service.SolveRequest{
		Tenant:  tenant,
		Backend: "petsc",
		Params: map[string]string{
			"solver": "gmres", "preconditioner": "jacobi",
			"tol": "1e-8", "maxits": "5000"},
		Procs:     2,
		Operator:  service.OperatorRef{ID: "chaos", Version: 1, GridN: 9},
		FaultSpec: spec,
	}
}

// TestServiceChaosTypedStatuses drives seeded jitter and lethal
// schedules through the request path and checks the same invariants the
// Session-level chaos suite checks, now expressed as wire statuses:
// jitter-only schedules still complete with a classified result; crash
// schedules end in a typed solve_aborted carrying the abort metadata;
// and the pooled, fault-free path keeps serving afterwards.
func TestServiceChaosTypedStatuses(t *testing.T) {
	svc, err := service.New(service.Config{
		EnableFaultInjection: true,
		SolveTimeout:         30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for _, seed := range chaosSeeds(t) {
		jitter := fault.Spec{
			Seed:      seed,
			PDelay:    0.05,
			MaxDelay:  500 * time.Microsecond,
			PReorder:  0.05,
			ReorderBy: 500 * time.Microsecond,
			PStall:    0.01,
			StallFor:  2 * time.Millisecond,
			CrashRank: -1,
			After:     10,
		}
		lethal := jitter
		lethal.PCrash = 0.002
		for _, tc := range []struct {
			name  string
			spec  fault.Spec
			crash bool
		}{{"jitter", jitter, false}, {"lethal", lethal, true}} {
			resp, serr := solveWatchdog(t, svc, chaosReq("chaos", tc.spec.String()))
			replay := "CHAOS_SEED=" + strconv.FormatInt(seed, 10) +
				" go test -tags faultinject ./internal/service -run TestServiceChaosTypedStatuses -v"
			if serr == nil {
				// Clean end state: classified, and converged runs carry a
				// meaningful result.
				if resp.FailReason == "none" && !resp.Converged {
					t.Errorf("seed=%d %s: fail_reason none but not converged\n  replay: %s",
						seed, tc.name, replay)
				}
				t.Logf("seed=%d %s: completed converged=%v fail_reason=%s attempts=%d (replay: %s)",
					seed, tc.name, resp.Converged, resp.FailReason, resp.Attempts, replay)
			} else {
				if !tc.crash {
					t.Errorf("seed=%d jitter-only schedule errored: %v\n  replay: %s", seed, serr, replay)
					continue
				}
				if serr.Code != service.CodeSolveAborted && serr.Code != service.CodeSessionAborted {
					t.Errorf("seed=%d %s: untyped error %v\n  replay: %s", seed, tc.name, serr, replay)
					continue
				}
				if serr.Code == service.CodeSolveAborted {
					if serr.AbortReason != "fault_injected" {
						t.Errorf("seed=%d %s: abort_reason=%q, want fault_injected (%v)\n  replay: %s",
							seed, tc.name, serr.AbortReason, serr, replay)
					}
					if serr.FailReason != "aborted" {
						t.Errorf("seed=%d %s: fail_reason=%q, want aborted\n  replay: %s",
							seed, tc.name, serr.FailReason, replay)
					}
				}
				if !serr.Retryable {
					t.Errorf("seed=%d %s: injected-fault abort must be retryable\n  replay: %s",
						seed, tc.name, replay)
				}
				t.Logf("seed=%d %s: typed abort code=%s reason=%s backend=%s attempts=%d (replay: %s)",
					seed, tc.name, serr.Code, serr.AbortReason, serr.Backend, serr.Attempts, replay)
			}

			// Chaos at the edge must not damage clean traffic: fault
			// requests run on dedicated sessions, so the pooled path
			// still serves.
			clean := chaosReq("chaos", "")
			cresp, cerr := solveWatchdog(t, svc, clean)
			if cerr != nil {
				t.Fatalf("seed=%d %s: clean request after chaos failed: %v", seed, tc.name, cerr)
			}
			if !cresp.Converged {
				t.Fatalf("seed=%d %s: clean request did not converge", seed, tc.name)
			}
		}
	}
}

// TestServiceServerLevelFaultSpec arms a guaranteed-crash schedule on
// every pooled session (the -fault-spec server flag path): every
// request must come back with a typed status, the poisoned entry must
// be rebuilt each time, and nothing may hang.
func TestServiceServerLevelFaultSpec(t *testing.T) {
	spec := fault.Spec{Seed: 3, PCrash: 1, CrashRank: -1, After: 5}
	svc, err := service.New(service.Config{
		EnableFaultInjection: true,
		FaultSpec:            spec.String(),
		SolveTimeout:         30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	aborts := 0
	for i := 0; i < 3; i++ {
		req := chaosReq("srv", "") // no per-request spec: the server arms it
		resp, serr := solveWatchdog(t, svc, req)
		if serr == nil {
			t.Logf("request %d survived the schedule: converged=%v", i, resp.Converged)
			continue
		}
		switch serr.Code {
		case service.CodeSolveAborted, service.CodeSessionAborted:
			aborts++
		default:
			t.Fatalf("request %d: untyped error under server fault spec: %v", i, serr)
		}
		if !serr.Retryable {
			t.Fatalf("request %d: server-fault abort must be retryable", i)
		}
	}
	if aborts == 0 {
		t.Fatal("a guaranteed-crash server schedule never aborted")
	}
	if got := svc.Stats().Counters["sessions_poisoned"]; got < 1 {
		t.Fatalf("sessions_poisoned = %d, want >= 1", got)
	}
}

// TestServiceFaultSpecHTTP checks the wire shape of chaos outcomes:
// the X-Lisi-Fault-Spec header is honored, aborts arrive as typed JSON
// error bodies with the abort metadata, and an unparsable spec is a
// 400 bad_fault_spec.
func TestServiceFaultSpecHTTP(t *testing.T) {
	svc, err := service.New(service.Config{
		EnableFaultInjection: true,
		SolveTimeout:         30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func(t *testing.T, header string) (*http.Response, []byte) {
		t.Helper()
		body, err := json.Marshal(chaosReq("wire", ""))
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest("POST", ts.URL+"/v1/solve", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if header != "" {
			req.Header.Set("X-Lisi-Fault-Spec", header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	crash := fault.Spec{Seed: 11, PCrash: 1, CrashRank: -1, After: 8}
	hr, body := post(t, crash.String())
	if hr.StatusCode != 500 {
		t.Fatalf("crash request status %d: %s", hr.StatusCode, body)
	}
	var wire struct {
		Error service.Error `json:"error"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Error.Code != service.CodeSolveAborted || wire.Error.AbortReason != "fault_injected" {
		t.Fatalf("wire error: %+v", wire.Error)
	}
	if wire.Error.FailReason != "aborted" || wire.Error.Backend == "" {
		t.Fatalf("wire error missing classification: %+v", wire.Error)
	}

	hr, body = post(t, "not-a-spec")
	if hr.StatusCode != 400 {
		t.Fatalf("bad spec status %d: %s", hr.StatusCode, body)
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Error.Code != service.CodeBadFaultSpec {
		t.Fatalf("bad spec code %q", wire.Error.Code)
	}
}
