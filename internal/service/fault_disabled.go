//go:build !faultinject

package service

import "repro/internal/comm"

// faultInjectionCompiled reports whether this binary can honor fault
// specs (chaos builds: go build -tags faultinject).
const faultInjectionCompiled = false

// newFaultHook always refuses in a production build: the injection
// machinery exists only under the faultinject tag, so no production
// deployment can be chaos-tested into an outage by a request header.
func newFaultHook(spec string, procs int) (comm.FaultHook, error) {
	return nil, errFaultNotCompiled
}
