package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// Config sizes the service. The zero value is usable: withDefaults
// fills every limit with a production-shaped default.
type Config struct {
	// DefaultProcs is the world size used when a request omits procs;
	// MaxProcs bounds what a request may ask for.
	DefaultProcs int
	MaxProcs     int
	// DefaultWorkers is the intra-rank worker-pool size used when a
	// request omits workers (normally 1, i.e. serial kernels);
	// MaxWorkers bounds what a request may ask for.
	DefaultWorkers int
	MaxWorkers     int
	// DefaultFormat is the SpMV storage format used when a request
	// omits format ("" keeps the legacy CSR kernels; "auto" probes
	// per pooled operator at setup).
	DefaultFormat string
	// MaxSessions caps the pooled sessions (each owns an SPMD world);
	// beyond it the least-recently-used idle session is evicted, and
	// when every session is busy new operators are shed (pool_full).
	MaxSessions int
	// QueueDepth bounds each pooled session's request queue; beyond it
	// requests are shed with queue_full (429).
	QueueDepth int
	// MaxPending caps admitted-but-unfinished requests server-wide
	// (overloaded, 503); TenantMaxPending caps them per tenant
	// (tenant_quota_exceeded, 429).
	MaxPending       int
	TenantMaxPending int
	// MaxBatchRHS caps the combined right-hand-side count of one
	// coalesced multi-RHS solve; 1 disables server-side batching.
	MaxBatchRHS int
	// MaxNRHS bounds one request's nrhs; MaxUnknowns bounds the global
	// system dimension.
	MaxNRHS     int
	MaxUnknowns int
	// MaxBodyBytes bounds a request body (HTTP layer).
	MaxBodyBytes int64
	// SolveTimeout is the pooled sessions' per-solve deadline
	// (core.SessionOptions.SolveTimeout); 0 disables it.
	SolveTimeout time.Duration
	// RetryBackoff feeds the session retry policy when a request sets
	// max_attempts > 1.
	RetryBackoff time.Duration
	// DrainTimeout bounds Drain before in-flight worlds are aborted
	// (used by cmd/lisi-serve's signal handler).
	DrainTimeout time.Duration

	// EnableFaultInjection honors per-request fault specs. It only has
	// effect in binaries built with the faultinject tag; chaos testing
	// only, never production.
	EnableFaultInjection bool
	// FaultSpec arms every newly built pooled session's world with this
	// schedule (fault.ParseSpec syntax) — server-level chaos, exercising
	// poisoned-session teardown and rebuild. Requires the faultinject
	// build tag and EnableFaultInjection.
	FaultSpec string
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.DefaultProcs, 1)
	def(&c.MaxProcs, 8)
	def(&c.DefaultWorkers, 1)
	def(&c.MaxWorkers, 16)
	def(&c.MaxSessions, 64)
	def(&c.QueueDepth, 32)
	def(&c.MaxPending, 1024)
	def(&c.TenantMaxPending, 128)
	def(&c.MaxBatchRHS, 8)
	def(&c.MaxNRHS, 16)
	def(&c.MaxUnknowns, 1<<21)
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 60 * time.Second
	}
	return c
}

// errFaultNotCompiled marks a fault spec that the running binary cannot
// honor (built without the faultinject tag).
var errFaultNotCompiled = errors.New(
	"fault injection is not compiled into this binary (build with -tags faultinject)")

// counters are the service-wide aggregate counters published via
// /v1/stats and expvar. All fields are atomic; names mirror the JSON.
type counters struct {
	Requests         atomic.Int64
	Solved           atomic.Int64
	SolveFailed      atomic.Int64 // typed non-converged FailReasons
	SolveAborted     atomic.Int64
	ShedDraining     atomic.Int64
	ShedOverloaded   atomic.Int64
	ShedTenantQuota  atomic.Int64
	ShedQueueFull    atomic.Int64
	ShedPoolFull     atomic.Int64
	SessionsBuilt    atomic.Int64
	SessionsEvicted  atomic.Int64
	SessionsPoisoned atomic.Int64
	Batches          atomic.Int64
	BatchedRequests  atomic.Int64
	FaultRequests    atomic.Int64
}

func (c *counters) snapshot() map[string]int64 {
	return map[string]int64{
		"requests":          c.Requests.Load(),
		"solved":            c.Solved.Load(),
		"solve_failed":      c.SolveFailed.Load(),
		"solve_aborted":     c.SolveAborted.Load(),
		"shed_draining":     c.ShedDraining.Load(),
		"shed_overloaded":   c.ShedOverloaded.Load(),
		"shed_tenant_quota": c.ShedTenantQuota.Load(),
		"shed_queue_full":   c.ShedQueueFull.Load(),
		"shed_pool_full":    c.ShedPoolFull.Load(),
		"sessions_built":    c.SessionsBuilt.Load(),
		"sessions_evicted":  c.SessionsEvicted.Load(),
		"sessions_poisoned": c.SessionsPoisoned.Load(),
		"batches":           c.Batches.Load(),
		"batched_requests":  c.BatchedRequests.Load(),
		"fault_requests":    c.FaultRequests.Load(),
	}
}

// tenantState tracks one tenant's quota pressure and counters.
type tenantState struct {
	pending  atomic.Int64
	requests atomic.Int64
	solved   atomic.Int64
	shed     atomic.Int64
}

// TenantStats is one tenant's row in Stats.
type TenantStats struct {
	Pending  int64 `json:"pending"`
	Requests int64 `json:"requests"`
	Solved   int64 `json:"solved"`
	Shed     int64 `json:"shed"`
}

// Stats is the /v1/stats body.
type Stats struct {
	Draining bool                   `json:"draining"`
	Sessions int                    `json:"sessions"`
	Pending  int64                  `json:"pending"`
	Counters map[string]int64       `json:"counters"`
	Tenants  map[string]TenantStats `json:"tenants"`
}

// Service is the solver front end. Create with New, serve with
// Handler(), stop with Drain.
type Service struct {
	cfg Config
	agg *telemetry.Aggregator
	cnt counters

	mu      sync.Mutex
	entries map[string]*entry
	tenants map[string]*tenantState

	pending  atomic.Int64
	draining atomic.Bool
	closed   atomic.Bool

	// admitMu serializes admission (wg.Add) against Drain flipping
	// accepting: Add may never race a Wait that saw a zero counter, so
	// Drain clears accepting under admitMu before it starts waiting.
	admitMu   sync.Mutex
	accepting bool
	wg        sync.WaitGroup

	jobs sync.Pool // *job, recycled across requests

	// dispatchGate, when non-nil, holds every session dispatcher before
	// its first job — a test hook making batch coalescing deterministic.
	dispatchGate chan struct{}
}

// New builds a Service. It fails fast on an unusable configuration —
// in particular a server-level FaultSpec that does not parse or is not
// compiled in (faultinject build tag).
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.FaultSpec != "" {
		if !cfg.EnableFaultInjection {
			return nil, errors.New("service: FaultSpec set without EnableFaultInjection")
		}
		if _, err := newFaultHook(cfg.FaultSpec, 1); err != nil {
			return nil, fmt.Errorf("service: server fault spec: %w", err)
		}
	}
	s := &Service{
		cfg:       cfg,
		agg:       telemetry.NewAggregator(),
		entries:   make(map[string]*entry),
		tenants:   make(map[string]*tenantState),
		accepting: true,
	}
	s.jobs.New = func() any { return &job{done: make(chan jobResult, 1)} }
	return s, nil
}

// Aggregator exposes the telemetry sink (for expvar publication).
func (s *Service) Aggregator() *telemetry.Aggregator { return s.agg }

// Draining reports whether the service is shedding new work.
func (s *Service) Draining() bool { return s.draining.Load() }

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	sessions := len(s.entries)
	tenants := make(map[string]TenantStats, len(s.tenants))
	for name, t := range s.tenants {
		tenants[name] = TenantStats{
			Pending:  t.pending.Load(),
			Requests: t.requests.Load(),
			Solved:   t.solved.Load(),
			Shed:     t.shed.Load(),
		}
	}
	s.mu.Unlock()
	return Stats{
		Draining: s.draining.Load(),
		Sessions: sessions,
		Pending:  s.pending.Load(),
		Counters: s.cnt.snapshot(),
		Tenants:  tenants,
	}
}

func (s *Service) tenant(name string) *tenantState {
	s.mu.Lock()
	t, ok := s.tenants[name]
	if !ok {
		t = &tenantState{}
		s.tenants[name] = t
	}
	s.mu.Unlock()
	return t
}

// Solve runs one request through admission, the session pool and the
// solver, filling resp. The returned *Error is nil on a completed solve
// (including typed non-converged outcomes, reported in resp.FailReason).
// ctx is the caller's cancellation scope and is threaded into the
// backend solve; cancelling it aborts the solve on every rank.
func (s *Service) Solve(ctx context.Context, req *SolveRequest, resp *SolveResponse) *Error {
	if s.closed.Load() {
		return errf(CodeServerClosed, 503, true, "server has drained and is shutting down")
	}
	if err := s.validate(req); err != nil {
		return err
	}
	t := s.tenant(req.Tenant)
	s.cnt.Requests.Add(1)
	t.requests.Add(1)

	s.admitMu.Lock()
	if !s.accepting {
		closed := s.closed.Load()
		s.admitMu.Unlock()
		t.shed.Add(1)
		s.cnt.ShedDraining.Add(1)
		if closed {
			return errf(CodeServerClosed, 503, true, "server has drained and is shutting down")
		}
		return errf(CodeDraining, 503, true, "server is draining; retry against another instance")
	}
	s.wg.Add(1)
	s.admitMu.Unlock()
	defer s.wg.Done()
	if s.pending.Add(1) > int64(s.cfg.MaxPending) {
		s.pending.Add(-1)
		t.shed.Add(1)
		s.cnt.ShedOverloaded.Add(1)
		return errf(CodeOverloaded, 503, true, "server-wide pending cap %d reached", s.cfg.MaxPending)
	}
	defer s.pending.Add(-1)
	if t.pending.Add(1) > int64(s.cfg.TenantMaxPending) {
		t.pending.Add(-1)
		t.shed.Add(1)
		s.cnt.ShedTenantQuota.Add(1)
		return errf(CodeTenantQuota, 429, true, "tenant %q pending cap %d reached", req.Tenant, s.cfg.TenantMaxPending)
	}
	defer t.pending.Add(-1)

	if req.FaultSpec != "" {
		return s.solveFaulted(ctx, req, resp, t)
	}

	e, reused, err := s.entryFor(req, t)
	if err != nil {
		return err
	}
	resp.SessionReused = reused
	return s.dispatchJob(ctx, e, req, resp, t)
}

// dispatchJob enqueues the request on e and waits for its result.
func (s *Service) dispatchJob(ctx context.Context, e *entry, req *SolveRequest, resp *SolveResponse, t *tenantState) *Error {
	j := s.jobs.Get().(*job)
	j.ctx = ctx
	j.n = e.spec.n
	j.nRhs = req.nrhs()
	j.rhs = req.RHS
	if j.rhs == nil {
		j.rhs = onesRHS(e.spec.n * j.nRhs)
	}
	j.wantSolution = req.ReturnSolution

	select {
	case e.jobs <- j:
	default:
		t.shed.Add(1)
		s.cnt.ShedQueueFull.Add(1)
		s.jobs.Put(j)
		return errf(CodeQueueFull, 429, true, "session queue for operator %s@%d is full (depth %d)",
			req.Operator.ID, req.Operator.Version, s.cfg.QueueDepth)
	}
	e.pending.Add(1)
	defer e.pending.Add(-1)

	var r jobResult
	select {
	case r = <-j.done:
	case <-e.runDone:
		// The session's world died before serving the job; the
		// dispatcher may still have replied in the same instant.
		select {
		case r = <-j.done:
		default:
			s.cnt.SolveAborted.Add(1)
			return errf(CodeSessionAborted, 503, true,
				"pooled session died before this request was served; retry rebuilds it")
		}
	case <-ctx.Done():
		// The caller is gone. The job still completes (or dies with the
		// world the cancelled solve poisons); the job must not be
		// recycled while the dispatcher can still touch it.
		return errf(CodeSolveAborted, 503, true, "request cancelled: %v", context.Cause(ctx))
	}
	err := s.finishJob(req, resp, &r, t)
	s.jobs.Put(j)
	return err
}

// finishJob translates a jobResult into the response or a typed error.
func (s *Service) finishJob(req *SolveRequest, resp *SolveResponse, r *jobResult, t *tenantState) *Error {
	if r.err != nil {
		if r.err.Code == CodeSolveAborted || r.err.Code == CodeSessionAborted {
			s.cnt.SolveAborted.Add(1)
		}
		return r.err
	}
	res := r.res
	resp.Tenant = req.Tenant
	resp.Backend = res.Backend
	resp.OperatorID = req.Operator.ID
	resp.OperatorVersion = req.Operator.Version
	resp.Iterations = res.Iterations
	resp.Residual = res.Residual
	resp.Converged = res.Converged
	resp.FailReason = res.FailReason.String()
	resp.Attempts = res.Attempts
	resp.NRHS = req.nrhs()
	resp.Batched = r.batched > 1
	if resp.Batched {
		resp.BatchNRHS = r.batchNRhs
		s.cnt.BatchedRequests.Add(1)
	}
	resp.SolveWallS = r.wall.Seconds()
	resp.Solution = r.solution
	resp.Report = r.report
	if res.FailReason == core.FailNone {
		s.cnt.Solved.Add(1)
		t.solved.Add(1)
	} else {
		s.cnt.SolveFailed.Add(1)
	}
	return nil
}

// entryFor returns the pooled session for the request's key, building
// (and, at capacity, evicting) as needed. The bool reports reuse.
func (s *Service) entryFor(req *SolveRequest, t *tenantState) (*entry, bool, *Error) {
	key := req.key()
	s.mu.Lock()
	if e, found, rerr := s.reuseLocked(key, req); found {
		s.mu.Unlock()
		return e, rerr == nil, rerr
	}
	s.mu.Unlock()
	// Resolve the operator outside the lock: sparse.NewCSR validates
	// bodies up to MaxBodyBytes, and one large build must not stall
	// admission, tenant lookups or /v1/stats.
	spec, err := s.buildSpec(req)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if e, found, rerr := s.reuseLocked(key, req); found {
		// Lost the build race to a concurrent request for the same key;
		// use the winner's session.
		s.mu.Unlock()
		return e, rerr == nil, rerr
	}
	if len(s.entries) >= s.cfg.MaxSessions {
		if !s.evictIdleLocked() {
			s.mu.Unlock()
			t.shed.Add(1)
			s.cnt.ShedPoolFull.Add(1)
			return nil, false, errf(CodePoolFull, 503, true,
				"session pool is at capacity (%d) with every session busy", s.cfg.MaxSessions)
		}
	}
	e, nerr := newEntry(s, key, spec)
	if nerr != nil {
		s.mu.Unlock()
		return nil, false, nerr
	}
	s.entries[key] = e
	e.lastUse = time.Now()
	s.cnt.SessionsBuilt.Add(1)
	s.mu.Unlock()
	e.start()
	return e, false, nil
}

// reuseLocked resolves key against the pool. found reports a live
// pooled entry; the *Error is then non-nil if the request cannot ride
// it. The RHS length check matters here: validate cannot size-check a
// request that omits the operator body (n is unknown), and buildSpec
// never runs on the reuse path — without this check a short RHS reaches
// the batch copy in the dispatcher and panics. A dead entry is pruned.
// Caller holds s.mu.
func (s *Service) reuseLocked(key string, req *SolveRequest) (*entry, bool, *Error) {
	e, ok := s.entries[key]
	if !ok {
		return nil, false, nil
	}
	if e.dead.Load() {
		delete(s.entries, key)
		return nil, false, nil
	}
	if cerr := operatorConflict(req, &e.spec); cerr != nil {
		return nil, true, cerr
	}
	if req.RHS != nil && len(req.RHS) != e.spec.n*req.nrhs() {
		return nil, true, errf(CodeBadRequest, 400, false,
			"rhs has %d values, want n*nrhs = %d", len(req.RHS), e.spec.n*req.nrhs())
	}
	e.lastUse = time.Now()
	return e, true, nil
}

// operatorConflict rejects a request whose operator body disagrees with
// the one already pooled under the same id@version — versions are
// immutable; a changed operator must bump Operator.Version.
func operatorConflict(req *SolveRequest, spec *entrySpec) *Error {
	switch {
	case req.Operator.GridN > 0 && req.Operator.GridN != spec.gridN:
		return errf(CodeOperatorConflict, 409, false,
			"operator %s@%d is pooled with grid_n=%d, request says %d; bump operator.version",
			req.Operator.ID, req.Operator.Version, spec.gridN, req.Operator.GridN)
	case req.Operator.Matrix != nil && (spec.matrix == nil || req.Operator.Matrix.N != spec.n):
		return errf(CodeOperatorConflict, 409, false,
			"operator %s@%d is pooled with a different operator body; bump operator.version",
			req.Operator.ID, req.Operator.Version)
	case req.Operator.MatrixMarket != "" && spec.matrix == nil:
		return errf(CodeOperatorConflict, 409, false,
			"operator %s@%d is pooled with grid_n=%d, request carries a matrix_market body; bump operator.version",
			req.Operator.ID, req.Operator.Version, spec.gridN)
	}
	return nil
}

// evictIdleLocked drops the least-recently-used session with no pending
// work. Caller holds s.mu.
func (s *Service) evictIdleLocked() bool {
	var victim *entry
	var victimKey string
	for k, e := range s.entries {
		if e.pending.Load() > 0 {
			continue
		}
		if victim == nil || e.lastUse.Before(victim.lastUse) {
			victim, victimKey = e, k
		}
	}
	if victim == nil {
		return false
	}
	delete(s.entries, victimKey)
	s.cnt.SessionsEvicted.Add(1)
	victim.beginStop()
	return true
}

// dropEntry removes a dead session from the pool (dispatcher teardown).
func (s *Service) dropEntry(e *entry) {
	s.mu.Lock()
	if cur, ok := s.entries[e.key]; ok && cur == e {
		delete(s.entries, e.key)
	}
	s.mu.Unlock()
}

// buildSpec resolves the request's operator into an entrySpec. It can
// validate multi-megabyte operator bodies, so it runs outside s.mu.
func (s *Service) buildSpec(req *SolveRequest) (entrySpec, *Error) {
	spec := entrySpec{
		tenant:       req.Tenant,
		backend:      req.Backend,
		procs:        req.procs(s.cfg.DefaultProcs),
		workers:      req.workers(s.cfg.DefaultWorkers),
		format:       req.format(s.cfg.DefaultFormat),
		params:       req.Params,
		opID:         req.Operator.ID,
		opVer:        req.Operator.Version,
		telemetry:    req.Telemetry,
		timeout:      s.cfg.SolveTimeout,
		maxAttempts:  req.MaxAttempts,
		retryBackoff: s.cfg.RetryBackoff,
		failover:     req.Failover,
	}
	switch {
	case req.Operator.GridN > 0:
		spec.gridN = req.Operator.GridN
		spec.n = req.Operator.GridN * req.Operator.GridN
	case req.Operator.Matrix != nil:
		m := req.Operator.Matrix
		a, err := sparse.NewCSR(m.N, m.N, m.RowPtr, m.ColInd, m.Vals)
		if err != nil {
			return spec, errf(CodeBadRequest, 400, false, "operator matrix: %v", err)
		}
		spec.matrix = a
		spec.n = m.N
	case req.Operator.MatrixMarket != "":
		a, err := sparse.ReadMatrixMarket(strings.NewReader(req.Operator.MatrixMarket))
		if err != nil {
			return spec, errf(CodeBadRequest, 400, false, "operator matrix_market: %v", err)
		}
		if a.Rows != a.Cols {
			return spec, errf(CodeBadRequest, 400, false,
				"operator matrix_market: %dx%d matrix is not square", a.Rows, a.Cols)
		}
		// validate() cannot size an unparsed .mtx body, so the unknown
		// cap is enforced here, after the (64MB-bounded) parse.
		if a.Rows > s.cfg.MaxUnknowns {
			return spec, errf(CodeBadRequest, 400, false,
				"system dimension %d exceeds the limit %d", a.Rows, s.cfg.MaxUnknowns)
		}
		spec.matrix = a
		spec.n = a.Rows
	default:
		return spec, errf(CodeOperatorMissing, 409, false,
			"operator %s@%d is not pooled; the first request must carry operator.matrix or operator.grid_n",
			req.Operator.ID, req.Operator.Version)
	}
	if spec.n < spec.procs {
		return spec, errf(CodeBadRequest, 400, false,
			"system dimension %d is smaller than the world size %d", spec.n, spec.procs)
	}
	if req.RHS != nil && len(req.RHS) != spec.n*req.nrhs() {
		return spec, errf(CodeBadRequest, 400, false,
			"rhs has %d values, want n*nrhs = %d", len(req.RHS), spec.n*req.nrhs())
	}
	if s.cfg.FaultSpec != "" {
		hook, err := newFaultHook(s.cfg.FaultSpec, spec.procs)
		if err != nil {
			return spec, errf(CodeBadFaultSpec, 400, false, "server fault spec: %v", err)
		}
		spec.hook = hook
	}
	return spec, nil
}

// solveFaulted serves a request carrying a fault spec on a dedicated,
// unpooled session so the injected schedule cannot poison pooled state
// shared with other tenants' requests.
func (s *Service) solveFaulted(ctx context.Context, req *SolveRequest, resp *SolveResponse, t *tenantState) *Error {
	if !s.cfg.EnableFaultInjection {
		return errf(CodeFaultDisabled, 403, false,
			"fault injection is disabled on this server (chaos builds only)")
	}
	procs := req.procs(s.cfg.DefaultProcs)
	hook, err := newFaultHook(req.FaultSpec, procs)
	if err != nil {
		if errors.Is(err, errFaultNotCompiled) {
			return errf(CodeFaultDisabled, 403, false, "%v", err)
		}
		return errf(CodeBadFaultSpec, 400, false, "%v", err)
	}
	spec, serr := s.buildSpec(req)
	if serr != nil {
		if serr.Code == CodeOperatorMissing {
			// A faulted request never reuses pooled operators; be explicit.
			serr.Message = "fault-spec requests use a dedicated session and must carry the operator body"
		}
		return serr
	}
	spec.hook = hook
	s.cnt.FaultRequests.Add(1)
	e, nerr := newEntry(s, "", spec)
	if nerr != nil {
		return nerr
	}
	e.start()
	defer e.beginStop()
	return s.dispatchJob(ctx, e, req, resp, t)
}

// Drain sheds new requests, waits for in-flight solves to finish (they
// run under their per-solve SolveTimeout), then stops every pooled
// session. When ctx expires first, the remaining worlds are aborted —
// their requests get typed solve_aborted statuses — and Drain returns
// ctx's cause; a clean drain returns nil.
func (s *Service) Drain(ctx context.Context) error {
	s.draining.Store(true)
	// Stop admission before waiting: once accepting is false no Solve
	// can wg.Add, so Wait never observes a zero counter that a late
	// request then bumps (the documented WaitGroup misuse window).
	s.admitMu.Lock()
	s.accepting = false
	s.admitMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = context.Cause(ctx)
		s.mu.Lock()
		aborting := make([]*entry, 0, len(s.entries))
		for _, e := range s.entries {
			aborting = append(aborting, e)
		}
		s.mu.Unlock()
		// Stop first so dispatchers exit their wait loops, then poison
		// the worlds so in-flight collectives unwind; stranded requests
		// get typed solve_aborted/session_aborted replies, which is what
		// lets wg drain.
		for _, e := range aborting {
			e.beginStop()
			e.world.Abort()
		}
		<-done
	}
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.entries = make(map[string]*entry)
	s.mu.Unlock()
	for _, e := range entries {
		e.beginStop()
	}
	for _, e := range entries {
		<-e.runDone
	}
	s.closed.Store(true)
	return forced
}

// Close force-drains with the configured DrainTimeout (test teardown).
func (s *Service) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Drain(ctx)
}

// validate checks the request's shape against the configured limits.
func (s *Service) validate(req *SolveRequest) *Error {
	if req.Tenant == "" {
		return errf(CodeBadRequest, 400, false, "tenant is required")
	}
	if len(req.Tenant) > 128 {
		return errf(CodeBadRequest, 400, false, "tenant name longer than 128 bytes")
	}
	if req.Backend == "" {
		return errf(CodeBadRequest, 400, false, "backend is required (one of %s)", strings.Join(core.Names(), ", "))
	}
	if _, ok := core.Lookup(req.Backend); !ok {
		return errf(CodeUnknownBackend, 400, false, "unknown backend %q (registered: %s)",
			req.Backend, strings.Join(core.Names(), ", "))
	}
	for _, name := range req.Failover {
		if _, ok := core.Lookup(name); !ok {
			return errf(CodeUnknownBackend, 400, false, "unknown failover backend %q (registered: %s)",
				name, strings.Join(core.Names(), ", "))
		}
	}
	if req.Procs < 0 || req.procs(s.cfg.DefaultProcs) > s.cfg.MaxProcs {
		return errf(CodeBadRequest, 400, false, "procs %d outside [1,%d]", req.Procs, s.cfg.MaxProcs)
	}
	if req.Workers < 0 || req.workers(s.cfg.DefaultWorkers) > s.cfg.MaxWorkers {
		return errf(CodeBadRequest, 400, false, "workers %d outside [1,%d]", req.Workers, s.cfg.MaxWorkers)
	}
	if f := req.format(s.cfg.DefaultFormat); f != "" {
		if _, err := sparse.ParseFormatChoice(f); err != nil {
			return errf(CodeBadRequest, 400, false, "format %q: %v", f, err)
		}
	}
	if req.Operator.ID == "" {
		return errf(CodeBadRequest, 400, false, "operator.id is required")
	}
	if req.Operator.Version < 0 {
		return errf(CodeBadRequest, 400, false, "operator.version must be >= 0")
	}
	if req.Operator.GridN > 0 && req.Operator.Matrix != nil {
		return errf(CodeBadRequest, 400, false, "operator.grid_n and operator.matrix are exclusive")
	}
	if req.Operator.MatrixMarket != "" && (req.Operator.GridN > 0 || req.Operator.Matrix != nil) {
		return errf(CodeBadRequest, 400, false, "operator.matrix_market is exclusive with grid_n and matrix")
	}
	if req.NRHS < 0 || req.nrhs() > s.cfg.MaxNRHS {
		return errf(CodeBadRequest, 400, false, "nrhs %d outside [1,%d]", req.NRHS, s.cfg.MaxNRHS)
	}
	if req.MaxAttempts < 0 || req.MaxAttempts > 10 {
		return errf(CodeBadRequest, 400, false, "max_attempts %d outside [0,10]", req.MaxAttempts)
	}
	n := 0
	switch {
	case req.Operator.GridN > 0:
		n = req.Operator.GridN * req.Operator.GridN
	case req.Operator.Matrix != nil:
		n = req.Operator.Matrix.N
	}
	if n > s.cfg.MaxUnknowns {
		return errf(CodeBadRequest, 400, false, "system dimension %d exceeds the limit %d", n, s.cfg.MaxUnknowns)
	}
	return nil
}

// nrhs returns the request's effective right-hand-side count.
func (r *SolveRequest) nrhs() int {
	if r.NRHS <= 0 {
		return 1
	}
	return r.NRHS
}

// procs returns the request's effective world size.
func (r *SolveRequest) procs(def int) int {
	if r.Procs <= 0 {
		return def
	}
	return r.Procs
}

// workers returns the request's effective intra-rank worker count.
func (r *SolveRequest) workers(def int) int {
	if r.Workers <= 0 {
		return def
	}
	return r.Workers
}

// format returns the request's effective SpMV format selection ("" =
// the legacy CSR path).
func (r *SolveRequest) format(def string) string {
	if r.Format == "" {
		return def
	}
	return r.Format
}

// key returns the session-pool key: everything that shapes the pooled
// session's identity — tenant, backend, world size, operator version,
// parameters, and the resilience policy. Memoized: the steady-state
// request path must not rebuild the string per solve.
func (r *SolveRequest) key() string {
	if r.poolKey != "" {
		return r.poolKey
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|p%d|w%d|f%s|%s@%d", r.Tenant, r.Backend, r.Procs, r.Workers, r.Format, r.Operator.ID, r.Operator.Version)
	keys := make([]string, 0, len(r.Params))
	for k := range r.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, r.Params[k])
	}
	fmt.Fprintf(&b, "|a%d", r.MaxAttempts)
	for _, f := range r.Failover {
		b.WriteString("|f:")
		b.WriteString(f)
	}
	if r.Telemetry {
		// Telemetry sessions carry a recorder (residual traces allocate),
		// so they pool separately from the zero-allocation fast path.
		b.WriteString("|T")
	}
	r.poolKey = b.String()
	return r.poolKey
}

// onesRHS returns an all-ones right-hand side (the convenience default
// for requests that omit rhs).
func onesRHS(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	return b
}
