//go:build faultinject

package service

import (
	"repro/internal/comm"
	"repro/internal/fault"
)

// faultInjectionCompiled reports whether this binary can honor fault
// specs (chaos builds: go build -tags faultinject).
const faultInjectionCompiled = true

// newFaultHook parses a fault spec and arms it for a world of the given
// size. Chaos builds only.
func newFaultHook(spec string, procs int) (comm.FaultHook, error) {
	parsed, err := fault.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return fault.New(parsed, procs), nil
}
