package service_test

import (
	"context"
	"testing"

	"repro/internal/service"
)

// BenchmarkServiceSolveReuse measures the full service request path —
// admission, quota accounting, pool lookup, dispatch, solve, reply —
// against a warm pooled session. This is the gate proving the service
// layer keeps pooled repeat solves on the session's zero-allocation
// steady-state path: scripts/benchguard.sh pins both ns/op and
// allocs/op. The request uses an uncancellable context and no solve
// timeout (the session's background-context fast path); HTTP callers
// pay a small extra per-request cost for context binding and JSON.
func BenchmarkServiceSolveReuse(b *testing.B) {
	for _, tc := range []struct {
		name    string
		backend string
		params  map[string]string
	}{
		{"superlu", "superlu", map[string]string{}},
		{"petsc", "petsc", map[string]string{
			"solver": "gmres", "preconditioner": "jacobi",
			"tol": "1e-8", "maxits": "500", "restart": "30"}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			svc, err := service.New(service.Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			const gridN = 16
			n := gridN * gridN
			rhs := make([]float64, n)
			for i := range rhs {
				rhs[i] = 1
			}
			req := &service.SolveRequest{
				Tenant:   "bench",
				Backend:  tc.backend,
				Params:   tc.params,
				RHS:      rhs,
				Operator: service.OperatorRef{ID: "grid", Version: 1, GridN: gridN},
			}
			resp := &service.SolveResponse{}
			ctx := context.Background()
			for i := 0; i < 2; i++ { // build the pool, warm every buffer
				if serr := svc.Solve(ctx, req, resp); serr != nil {
					b.Fatal(serr)
				}
				if !resp.Converged {
					b.Fatalf("warmup solve did not converge: %+v", resp)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if serr := svc.Solve(ctx, req, resp); serr != nil {
					b.Fatal(serr)
				}
			}
		})
	}
}
