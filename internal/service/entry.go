package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/pmat"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// entrySpec freezes everything that shapes one pooled session's
// identity, resolved from the first request seen for its pool key.
type entrySpec struct {
	tenant  string
	backend string
	procs   int
	workers int
	format  string
	n       int
	params  map[string]string

	gridN  int         // paper model problem when > 0
	matrix *sparse.CSR // explicit global operator otherwise

	opID  string
	opVer int

	telemetry    bool
	hook         comm.FaultHook
	timeout      time.Duration
	maxAttempts  int
	retryBackoff time.Duration
	failover     []string
}

// job is one admitted request travelling from its handler to the
// entry's dispatcher. done is buffered so neither side can block the
// other: the dispatcher's reply never waits, and a handler that
// abandoned the job (caller cancellation) just never reads it.
type job struct {
	ctx          context.Context
	n            int
	nRhs         int
	rhs          []float64
	wantSolution bool

	done chan jobResult
}

// jobResult is the dispatcher's reply to one job. err is exclusive
// with the rest.
type jobResult struct {
	res       core.SolveResult
	err       *Error
	wall      time.Duration
	batched   int
	batchNRhs int
	solution  []float64
	report    *telemetry.SolveReport
}

// rankResult is one rank's outcome for the setup phase or one solve.
type rankResult struct {
	rank int
	res  core.SolveResult
	err  error
}

// entry is one pooled session: an SPMD world whose ranks each hold an
// open core.Session against the same staged operator, a bounded job
// queue, and a dispatcher goroutine that feeds the ranks. The entry is
// the unit of both reuse (repeat solves ride the sessions'
// version-keyed steady-state path) and blast radius (an aborted solve
// poisons the world, so the whole entry is torn down and rebuilt by
// the next request).
type entry struct {
	svc  *Service
	key  string
	spec entrySpec

	world    *comm.World
	jobs     chan *job
	rankJobs []chan *job // cap 1 each: a send never blocks on a dead rank
	results  chan rankResult
	runDone  chan struct{} // closed when the world's Run region returns
	stopCh   chan struct{}
	stopOnce sync.Once

	rec    *telemetry.Recorder // non-nil only for telemetry entries
	starts []int               // block-row starts, len procs+1
	rankX  [][]float64         // per-rank solution buffers, rank-written

	pending atomic.Int64
	dead    atomic.Bool
	lastUse time.Time // guarded by svc.mu

	// Dispatcher-owned batching state, reused across rounds. Replied
	// members are nil'd in place; torn records that teardown ran.
	members  []*job
	carry    *job
	batchRhs []float64
	wire     job
	torn     bool
}

func newEntry(s *Service, key string, spec entrySpec) (*entry, *Error) {
	w, err := comm.NewWorld(spec.procs)
	if err != nil {
		return nil, errf(CodeBadRequest, 400, false, "procs %d: %v", spec.procs, err)
	}
	if spec.hook != nil {
		// Arm before Run starts — SetFaultHook's contract.
		w.SetFaultHook(spec.hook)
	}
	e := &entry{
		svc:      s,
		key:      key,
		spec:     spec,
		world:    w,
		jobs:     make(chan *job, s.cfg.QueueDepth),
		rankJobs: make([]chan *job, spec.procs),
		results:  make(chan rankResult, spec.procs),
		runDone:  make(chan struct{}),
		stopCh:   make(chan struct{}),
		starts:   evenStarts(spec.n, spec.procs),
		rankX:    make([][]float64, spec.procs),
		members:  make([]*job, 0, 8),
	}
	if spec.telemetry {
		e.rec = telemetry.New()
	}
	for r := range e.rankJobs {
		e.rankJobs[r] = make(chan *job, 1)
	}
	return e, nil
}

func (e *entry) start() {
	go func() {
		_ = e.world.Run(e.rankLoop)
		close(e.runDone)
	}()
	go e.dispatch()
}

// beginStop asks the dispatcher to finish the queued work and tear the
// entry down. Idempotent.
func (e *entry) beginStop() { e.stopOnce.Do(func() { close(e.stopCh) }) }

// setupRank builds this rank's layout, local operator block and
// session. A world abort mid-setup (server-level fault schedules crash
// at the layout collective) is converted to an error so every rank
// still reports exactly one setup result and then parks — a rank that
// unwound instead would strand its peers' collectives.
func (e *entry) setupRank(c *comm.Comm) (s *core.Session, l *pmat.Layout, err error) {
	defer func() {
		if p := recover(); p != nil {
			if p != comm.ErrAborted {
				panic(p)
			}
			cause := e.world.Cause()
			if cause == nil {
				cause = comm.ErrAborted
			}
			s, err = nil, cause
		}
	}()
	l, err = pmat.EvenLayout(c, e.spec.n)
	if err != nil {
		return nil, nil, err
	}
	var a *sparse.CSR
	if e.spec.matrix != nil {
		a = e.spec.matrix.SubMatrix(l.Start, l.Start+l.LocalN)
	} else {
		a, _, err = mesh.PaperProblem(e.spec.gridN).GenerateLocal(l)
		if err != nil {
			return nil, nil, err
		}
	}
	s, err = core.OpenSession(e.spec.backend, c, core.SessionOptions{
		Recorder:     e.rec,
		SolveTimeout: e.spec.timeout,
		Params:       e.spec.params,
		Workers:      e.spec.workers,
		Format:       e.spec.format,
		MaxAttempts:  e.spec.maxAttempts,
		RetryBackoff: e.spec.retryBackoff,
		Failover:     e.spec.failover,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := s.Setup(l, a); err != nil {
		return nil, nil, err
	}
	return s, l, nil
}

// rankLoop is the per-rank body of the entry's Run region: set up once,
// then serve jobs until the dispatcher closes this rank's channel.
func (e *entry) rankLoop(c *comm.Comm) {
	rank := c.Rank()
	s, l, err := e.setupRank(c)
	e.results <- rankResult{rank: rank, err: err}
	if err != nil {
		// Park until teardown closes the channel: returning now would
		// either strand peers (collective discipline) or force Run to
		// report before the dispatcher has replied to queued jobs.
		for range e.rankJobs[rank] {
		}
		return
	}
	defer s.Close()
	localN := l.LocalN
	var rhs []float64
	for j := range e.rankJobs[rank] {
		// Stage this rank's rows of each right-hand side. Capacity reuse
		// keeps the repeat-solve path allocation-free.
		need := localN * j.nRhs
		if cap(rhs) < need {
			rhs = make([]float64, need)
		}
		rhs = rhs[:need]
		for k := 0; k < j.nRhs; k++ {
			copy(rhs[k*localN:(k+1)*localN], j.rhs[k*j.n+l.Start:k*j.n+l.Start+localN])
		}
		if serr := s.SetupRHS(rhs, j.nRhs); serr != nil {
			// Staging errors are rank-uniform (bad state, dead session):
			// every rank takes this branch together, so nobody enters
			// Solve's collectives short-handed.
			e.results <- rankResult{rank: rank, err: serr}
			continue
		}
		x := e.rankX[rank]
		if cap(x) < need {
			x = make([]float64, need)
		}
		x = x[:need]
		for i := range x {
			x[i] = 0
		}
		e.rankX[rank] = x
		res, serr := s.Solve(j.ctx, x)
		e.results <- rankResult{rank: rank, res: res, err: serr}
	}
}

// dispatch is the entry's single dispatcher: collect the setup
// outcome, then serve (batched) jobs until stopped or poisoned.
func (e *entry) dispatch() {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		// Defense in depth: a dispatcher panic (e.g. malformed job state
		// reaching the batch copy) must take down the entry, not the
		// server. Poison the world so any in-flight rank collectives
		// unwind, fail the current round's un-replied members (replied
		// slots are nil), and tear down the rest of the queue.
		e.world.Abort()
		terr := errf(CodeSessionAborted, 503, true,
			"internal dispatcher failure: %v; the pooled session was torn down", p)
		for i, m := range e.members {
			if m == nil {
				continue
			}
			e.members[i] = nil
			m.done <- jobResult{err: terr}
		}
		e.teardown(terr)
	}()
	if serr := e.collectSetup(); serr != nil {
		e.teardown(serr)
		return
	}
	if gate := e.svc.dispatchGate; gate != nil {
		// Test hook: lets tests queue jobs before the first round. Stop
		// still wins so a gated entry cannot deadlock shutdown.
		select {
		case <-gate:
		case <-e.stopCh:
		}
	}
	for {
		j := e.nextJob()
		if j == nil {
			e.teardown(nil)
			return
		}
		if !e.runBatch(e.gather(j)) {
			e.teardown(nil)
			return
		}
	}
}

// collectSetup waits for every rank's setup result.
func (e *entry) collectSetup() *Error {
	var setupErr error
	for i := 0; i < e.spec.procs; i++ {
		select {
		case r := <-e.results:
			if r.err != nil && setupErr == nil {
				setupErr = r.err
			}
		case <-e.runDone:
			return errf(CodeSessionAborted, 503, true,
				"session world died during setup: %v", e.world.Cause())
		}
	}
	if setupErr == nil {
		return nil
	}
	if errors.Is(setupErr, comm.ErrAborted) || errors.Is(setupErr, comm.ErrInjectedFault) {
		return errf(CodeSolveAborted, 500, true, "session aborted during setup: %v", setupErr)
	}
	return errf(CodeSetupFailed, 400, false,
		"backend %s rejected the staged system: %v", e.spec.backend, setupErr)
}

// nextJob returns the next job to serve, or nil when the entry should
// stop. After beginStop the remaining queue is still drained and served.
func (e *entry) nextJob() *job {
	if j := e.carry; j != nil {
		e.carry = nil
		return j
	}
	select {
	case j := <-e.jobs:
		return j
	case <-e.stopCh:
		select {
		case j := <-e.jobs:
			return j
		default:
			return nil
		}
	case <-e.runDone:
		return nil
	}
}

// gather coalesces queued jobs with the first into one batch, up to
// MaxBatchRHS combined right-hand sides. Jobs on one entry share the
// operator and parameters by construction (the pool key), so merging
// them amortizes one Setup/SetupRHS round across all members. A job
// that would overflow the cap is carried into the next round.
func (e *entry) gather(first *job) []*job {
	members := append(e.members[:0], first)
	total := first.nRhs
	for total < e.svc.cfg.MaxBatchRHS {
		select {
		case j := <-e.jobs:
			if total+j.nRhs > e.svc.cfg.MaxBatchRHS {
				e.carry = j
				e.members = members
				return members
			}
			members = append(members, j)
			total += j.nRhs
		default:
			e.members = members
			return members
		}
	}
	e.members = members
	return members
}

// runBatch runs one coalesced solve round. It returns false when the
// world was poisoned and the entry must be torn down.
func (e *entry) runBatch(members []*job) bool {
	procs := e.spec.procs
	n := e.spec.n
	total := 0
	for _, m := range members {
		total += m.nRhs
	}

	wire := members[0]
	var cancelMerged context.CancelFunc
	if len(members) > 1 {
		e.svc.cnt.Batches.Add(1)
		need := n * total
		if cap(e.batchRhs) < need {
			e.batchRhs = make([]float64, need)
		}
		e.batchRhs = e.batchRhs[:need]
		off := 0
		for _, m := range members {
			copy(e.batchRhs[off:off+n*m.nRhs], m.rhs[:n*m.nRhs])
			off += n * m.nRhs
		}
		ctx, cancel := mergedContext(members)
		cancelMerged = cancel
		e.wire = job{ctx: ctx, n: n, nRhs: total, rhs: e.batchRhs}
		wire = &e.wire
	}
	if e.rec != nil {
		// Telemetry entries report per round; ranks are idle here, so
		// the reset cannot race their recordings.
		e.rec.Reset()
	}

	start := time.Now()
	for r := 0; r < procs; r++ {
		e.rankJobs[r] <- wire
	}
	var res core.SolveResult
	haveRes := false
	var stageErr error
	aborted, alive := false, true
	for i := 0; i < procs; i++ {
		select {
		case r := <-e.results:
			if r.rank == 0 {
				res, haveRes = r.res, true
			} else if !haveRes {
				res = r.res
			}
			if r.res.Aborted || errors.Is(r.err, core.ErrSessionDead) {
				aborted = true
			} else if r.err != nil && r.res.FailReason == core.FailNone && stageErr == nil {
				stageErr = r.err
			}
		case <-e.runDone:
			aborted, alive = true, false
			i = procs
		}
	}
	wall := time.Since(start)
	if cancelMerged != nil {
		cancelMerged()
	}

	if aborted || !alive {
		e.svc.cnt.SessionsPoisoned.Add(1)
		terr := e.abortError(res, haveRes)
		for i, m := range members {
			members[i] = nil
			m.done <- jobResult{err: terr}
		}
		return false
	}
	if stageErr != nil {
		terr := errf(CodeSetupFailed, 500, true, "right-hand-side staging failed: %v", stageErr)
		for i, m := range members {
			members[i] = nil
			m.done <- jobResult{err: terr}
		}
		return true // the staged system is intact; the entry stays usable
	}

	var rep *telemetry.SolveReport
	if e.rec != nil {
		rep = e.rec.Report(res.Backend)
		rep.Procs = procs
		rep.GlobalRows = n
		rep.Iterations = res.Iterations
		rep.FinalResidual = res.Residual
		rep.Converged = res.Converged
		rep.WallSeconds = wall.Seconds()
		e.svc.agg.Record(rep)
	}
	off := 0
	for i, m := range members {
		jr := jobResult{res: res, wall: wall, batched: len(members), batchNRhs: total, report: rep}
		if m.wantSolution {
			jr.solution = e.assemble(off, m.nRhs)
		}
		// The reply hands the job back to its handler, which may recycle
		// it immediately — no field of m may be touched after the send.
		// The slot is cleared first so the dispatcher's panic recovery
		// never replies twice to (or touches a recycled) member.
		step := m.nRhs
		members[i] = nil
		m.done <- jr
		off += step
	}
	return true
}

// assemble gathers the global solution for one member's right-hand
// sides (batch columns [off, off+nRhs)) from the per-rank buffers.
// Called only after every rank's result arrived, which orders the
// buffer writes before these reads.
func (e *entry) assemble(off, nRhs int) []float64 {
	n := e.spec.n
	sol := make([]float64, n*nRhs)
	for r := 0; r < e.spec.procs; r++ {
		localN := e.starts[r+1] - e.starts[r]
		x := e.rankX[r]
		for k := 0; k < nRhs; k++ {
			copy(sol[k*n+e.starts[r]:k*n+e.starts[r]+localN], x[(off+k)*localN:(off+k+1)*localN])
		}
	}
	return sol
}

// abortError translates an aborted round into the typed wire error.
func (e *entry) abortError(res core.SolveResult, haveRes bool) *Error {
	reason := res.AbortReason
	if !haveRes || reason == "" {
		reason = abortReasonFromCause(e.world.Cause())
	}
	status := 503
	switch reason {
	case "fault_injected":
		status = 500
	case "deadline_exceeded":
		status = 504
	}
	terr := errf(CodeSolveAborted, status, true,
		"solve aborted (%s); the pooled session was torn down and the next request rebuilds it", reason)
	terr.AbortReason = reason
	if haveRes {
		terr.FailReason = res.FailReason.String()
		terr.Attempts = res.Attempts
		terr.Backend = res.Backend
	} else {
		terr.FailReason = core.FailAborted.String()
	}
	return terr
}

func abortReasonFromCause(cause error) string {
	switch {
	case cause == nil:
		return "aborted"
	case errors.Is(cause, comm.ErrInjectedFault):
		return "fault_injected"
	case errors.Is(cause, context.DeadlineExceeded):
		return "deadline_exceeded"
	default:
		return "canceled"
	}
}

// teardown marks the entry dead, releases the ranks, and fails
// everything still queued with a typed, retryable status. Dispatcher
// goroutine only; idempotent so the dispatcher's panic recovery can
// call it even when a round already began tearing down.
func (e *entry) teardown(terr *Error) {
	if e.torn {
		return
	}
	e.torn = true
	e.dead.Store(true)
	e.svc.dropEntry(e)
	for _, ch := range e.rankJobs {
		close(ch)
	}
	if terr == nil {
		terr = errf(CodeSessionAborted, 503, true,
			"pooled session was torn down before this request was served; retrying rebuilds it")
	}
	if j := e.carry; j != nil {
		e.carry = nil
		j.done <- jobResult{err: terr}
	}
	for {
		select {
		case j := <-e.jobs:
			j.done <- jobResult{err: terr}
		default:
			return
		}
	}
}

// mergedContext derives a context for a coalesced solve that cancels
// only when every member's context has cancelled: one caller hanging
// up must not abort the batchmates' solve (a world abort would poison
// the pooled entry for all of them).
func mergedContext(members []*job) (context.Context, context.CancelFunc) {
	for _, m := range members {
		if m.ctx == nil || m.ctx.Done() == nil {
			// This member can never hang up, so the merged context must
			// never cancel — counting only the cancellable members would
			// abort (and poison) the solve out from under it. This also
			// keeps the session's background-context fast path.
			return context.Background(), func() {}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var remaining atomic.Int64
	remaining.Store(int64(len(members)))
	stops := make([]func() bool, 0, len(members))
	for _, m := range members {
		stops = append(stops, context.AfterFunc(m.ctx, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		}))
	}
	return ctx, func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
}

// evenStarts replicates pmat.EvenLayout's block-row partition of n rows
// over procs ranks: starts[r] is rank r's first global row, with the
// remainder rows going to the low ranks.
func evenStarts(n, procs int) []int {
	starts := make([]int, procs+1)
	q, rem := n/procs, n%procs
	for r := 0; r < procs; r++ {
		starts[r+1] = starts[r] + q
		if r < rem {
			starts[r+1]++
		}
	}
	return starts
}
