package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/service"
	"repro/internal/sparse"
)

// gmresParams is the iterative workhorse configuration used across the
// service tests (same family as the core steady-state suite).
func gmresParams() map[string]string {
	return map[string]string{
		"solver": "gmres", "preconditioner": "jacobi",
		"tol": "1e-8", "maxits": "500", "restart": "30",
	}
}

func newTestService(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	return svc
}

func gridReq(tenant string, gridN int) *service.SolveRequest {
	return &service.SolveRequest{
		Tenant:   tenant,
		Backend:  "petsc",
		Params:   gmresParams(),
		Operator: service.OperatorRef{ID: "grid", Version: 1, GridN: gridN},
	}
}

// checkResidual verifies a returned solution against the paper model
// problem with the all-ones default right-hand side.
func checkResidual(t *testing.T, gridN int, x []float64, tol float64) {
	t.Helper()
	a, _, err := mesh.PaperProblem(gridN).GenerateGlobal()
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	r := a.Residual(b, x)
	if rel := sparse.Norm2(r) / sparse.Norm2(b); rel > tol {
		t.Fatalf("relative residual %.3e exceeds %g", rel, tol)
	}
}

func TestServiceSolveAndReuse(t *testing.T) {
	svc := newTestService(t, service.Config{})
	req := gridReq("acme", 12)
	req.ReturnSolution = true
	var resp service.SolveResponse
	if serr := svc.Solve(context.Background(), req, &resp); serr != nil {
		t.Fatalf("first solve: %v", serr)
	}
	if !resp.Converged {
		t.Fatalf("first solve did not converge: %+v", resp)
	}
	if resp.SessionReused {
		t.Fatal("first solve cannot reuse a session")
	}
	if resp.FailReason != "none" || resp.Attempts != 1 || resp.Backend != "petsc" {
		t.Fatalf("unexpected classification: %+v", resp)
	}
	checkResidual(t, 12, resp.Solution, 1e-6)

	var resp2 service.SolveResponse
	if serr := svc.Solve(context.Background(), req, &resp2); serr != nil {
		t.Fatalf("second solve: %v", serr)
	}
	if !resp2.SessionReused {
		t.Fatal("second solve should hit the pooled session")
	}
	if !resp2.Converged {
		t.Fatalf("second solve did not converge: %+v", resp2)
	}
	st := svc.Stats()
	if st.Counters["sessions_built"] != 1 {
		t.Fatalf("sessions_built = %d, want 1", st.Counters["sessions_built"])
	}
	if st.Counters["solved"] != 2 {
		t.Fatalf("solved = %d, want 2", st.Counters["solved"])
	}
}

func TestServiceExplicitMatrixMultiProc(t *testing.T) {
	const gridN = 8
	a, _, err := mesh.PaperProblem(gridN).GenerateGlobal()
	if err != nil {
		t.Fatal(err)
	}
	svc := newTestService(t, service.Config{})
	req := &service.SolveRequest{
		Tenant:  "acme",
		Backend: "petsc",
		Params:  gmresParams(),
		Procs:   2,
		Operator: service.OperatorRef{
			ID: "csr", Version: 3,
			Matrix: &service.MatrixPayload{N: a.Rows, RowPtr: a.RowPtr, ColInd: a.ColInd, Vals: a.Vals},
		},
		ReturnSolution: true,
	}
	var resp service.SolveResponse
	if serr := svc.Solve(context.Background(), req, &resp); serr != nil {
		t.Fatal(serr)
	}
	if !resp.Converged {
		t.Fatalf("not converged: %+v", resp)
	}
	checkResidual(t, gridN, resp.Solution, 1e-6)

	// Later requests may omit the operator body and reuse the pool.
	thin := &service.SolveRequest{
		Tenant: "acme", Backend: "petsc", Params: gmresParams(), Procs: 2,
		Operator: service.OperatorRef{ID: "csr", Version: 3},
	}
	var resp2 service.SolveResponse
	if serr := svc.Solve(context.Background(), thin, &resp2); serr != nil {
		t.Fatal(serr)
	}
	if !resp2.SessionReused || !resp2.Converged {
		t.Fatalf("thin request: reused=%v converged=%v", resp2.SessionReused, resp2.Converged)
	}
}

func TestServiceMultiRHS(t *testing.T) {
	const gridN = 8
	n := gridN * gridN
	svc := newTestService(t, service.Config{})
	req := gridReq("acme", gridN)
	req.NRHS = 3
	req.RHS = make([]float64, n*3)
	for k := 0; k < 3; k++ {
		for i := 0; i < n; i++ {
			req.RHS[k*n+i] = float64(k + 1)
		}
	}
	req.ReturnSolution = true
	var resp service.SolveResponse
	if serr := svc.Solve(context.Background(), req, &resp); serr != nil {
		t.Fatal(serr)
	}
	if !resp.Converged || resp.NRHS != 3 || len(resp.Solution) != n*3 {
		t.Fatalf("nrhs=%d len(sol)=%d converged=%v", resp.NRHS, len(resp.Solution), resp.Converged)
	}
	a, _, err := mesh.PaperProblem(gridN).GenerateGlobal()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		r := a.Residual(req.RHS[k*n:(k+1)*n], resp.Solution[k*n:(k+1)*n])
		if rel := sparse.Norm2(r) / sparse.Norm2(req.RHS[k*n:(k+1)*n]); rel > 1e-6 {
			t.Fatalf("rhs %d: relative residual %.3e", k, rel)
		}
	}
}

func TestServiceMultiTenantConcurrent(t *testing.T) {
	svc := newTestService(t, service.Config{})
	tenants := []string{"alpha", "beta", "gamma"}
	const perTenant = 8
	var wg sync.WaitGroup
	errs := make(chan error, len(tenants)*perTenant)
	for _, tenant := range tenants {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				var resp service.SolveResponse
				if serr := svc.Solve(context.Background(), gridReq(tenant, 10), &resp); serr != nil {
					errs <- fmt.Errorf("%s: %v", tenant, serr)
					return
				}
				if !resp.Converged {
					errs <- fmt.Errorf("%s: not converged", tenant)
				}
			}(tenant)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := svc.Stats()
	if st.Counters["solved"] != int64(len(tenants)*perTenant) {
		t.Fatalf("solved = %d, want %d", st.Counters["solved"], len(tenants)*perTenant)
	}
	// One pooled session per tenant (the tenant is part of the pool key).
	if st.Counters["sessions_built"] != int64(len(tenants)) {
		t.Fatalf("sessions_built = %d, want %d", st.Counters["sessions_built"], len(tenants))
	}
	for _, tenant := range tenants {
		ts, ok := st.Tenants[tenant]
		if !ok || ts.Requests != perTenant {
			t.Fatalf("tenant %s stats = %+v", tenant, ts)
		}
	}
}

func TestServiceTelemetryReport(t *testing.T) {
	svc := newTestService(t, service.Config{})
	req := gridReq("acme", 10)
	req.Telemetry = true
	var resp service.SolveResponse
	if serr := svc.Solve(context.Background(), req, &resp); serr != nil {
		t.Fatal(serr)
	}
	if resp.Report == nil {
		t.Fatal("telemetry request returned no report")
	}
	if resp.Report.Solver != "petsc" {
		t.Fatalf("report solver = %q", resp.Report.Solver)
	}
	if svc.Aggregator().Len() != 1 {
		t.Fatalf("aggregator has %d reports, want 1", svc.Aggregator().Len())
	}
	// Telemetry and non-telemetry traffic pool separately.
	plain := gridReq("acme", 10)
	var resp2 service.SolveResponse
	if serr := svc.Solve(context.Background(), plain, &resp2); serr != nil {
		t.Fatal(serr)
	}
	if resp2.SessionReused {
		t.Fatal("plain request must not reuse the telemetry session")
	}
	if resp2.Report != nil {
		t.Fatal("plain request should carry no report")
	}
}

func TestServiceSolveTimeoutAbortsAndRebuilds(t *testing.T) {
	svc := newTestService(t, service.Config{SolveTimeout: 50 * time.Millisecond})
	req := gridReq("acme", 16)
	// Unreachable tolerance: the solve burns its full deadline.
	req.Params["tol"] = "1e-300"
	req.Params["maxits"] = "1000000000"
	var resp service.SolveResponse
	serr := svc.Solve(context.Background(), req, &resp)
	if serr == nil {
		t.Fatalf("expected an aborted solve, got %+v", resp)
	}
	if serr.Code != service.CodeSolveAborted {
		t.Fatalf("code = %s, want %s (%v)", serr.Code, service.CodeSolveAborted, serr)
	}
	if serr.AbortReason != "deadline_exceeded" || serr.HTTPStatus() != 504 {
		t.Fatalf("abort_reason=%s status=%d, want deadline_exceeded/504", serr.AbortReason, serr.HTTPStatus())
	}
	if serr.FailReason != "aborted" || !serr.Retryable {
		t.Fatalf("fail_reason=%s retryable=%v", serr.FailReason, serr.Retryable)
	}

	// The poisoned session is rebuilt transparently by the next request.
	good := gridReq("acme", 16)
	var resp2 service.SolveResponse
	if serr := svc.Solve(context.Background(), good, &resp2); serr != nil {
		t.Fatalf("rebuild solve: %v", serr)
	}
	if resp2.SessionReused {
		t.Fatal("rebuilt session must not report reuse")
	}
	if !resp2.Converged {
		t.Fatal("rebuilt session did not converge")
	}
	st := svc.Stats()
	if st.Counters["sessions_poisoned"] != 1 {
		t.Fatalf("sessions_poisoned = %d, want 1", st.Counters["sessions_poisoned"])
	}
}

func TestServiceCallerCancellation(t *testing.T) {
	svc := newTestService(t, service.Config{})
	req := gridReq("acme", 16)
	req.Params["tol"] = "1e-300"
	req.Params["maxits"] = "1000000000"
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	var resp service.SolveResponse
	serr := svc.Solve(ctx, req, &resp)
	if serr == nil {
		t.Fatalf("expected cancellation, got %+v", resp)
	}
	if serr.Code != service.CodeSolveAborted {
		t.Fatalf("code = %s, want %s", serr.Code, service.CodeSolveAborted)
	}
}

func TestServiceEviction(t *testing.T) {
	svc := newTestService(t, service.Config{MaxSessions: 1})
	var resp service.SolveResponse
	if serr := svc.Solve(context.Background(), gridReq("acme", 8), &resp); serr != nil {
		t.Fatal(serr)
	}
	other := gridReq("acme", 10)
	other.Operator.ID = "grid2"
	if serr := svc.Solve(context.Background(), other, &resp); serr != nil {
		t.Fatal(serr)
	}
	st := svc.Stats()
	if st.Counters["sessions_evicted"] != 1 {
		t.Fatalf("sessions_evicted = %d, want 1", st.Counters["sessions_evicted"])
	}
	if st.Sessions != 1 {
		t.Fatalf("pool holds %d sessions, want 1", st.Sessions)
	}
}

func TestServiceTypedValidation(t *testing.T) {
	svc := newTestService(t, service.Config{})
	for _, tc := range []struct {
		name   string
		mutate func(*service.SolveRequest)
		code   string
		status int
	}{
		{"no tenant", func(r *service.SolveRequest) { r.Tenant = "" }, service.CodeBadRequest, 400},
		{"bad backend", func(r *service.SolveRequest) { r.Backend = "eigen" }, service.CodeUnknownBackend, 400},
		{"bad failover", func(r *service.SolveRequest) { r.Failover = []string{"nope"} }, service.CodeUnknownBackend, 400},
		{"procs too big", func(r *service.SolveRequest) { r.Procs = 512 }, service.CodeBadRequest, 400},
		{"bad format", func(r *service.SolveRequest) { r.Format = "ellpack" }, service.CodeBadRequest, 400},
		{"no operator id", func(r *service.SolveRequest) { r.Operator.ID = "" }, service.CodeBadRequest, 400},
		{"operator body missing", func(r *service.SolveRequest) { r.Operator.GridN = 0 }, service.CodeOperatorMissing, 409},
		{"nrhs too big", func(r *service.SolveRequest) { r.NRHS = 10000 }, service.CodeBadRequest, 400},
		{"fault spec disabled", func(r *service.SolveRequest) { r.FaultSpec = "seed=1,pcrash=1" }, service.CodeFaultDisabled, 403},
		{"grid and matrix", func(r *service.SolveRequest) {
			r.Operator.Matrix = &service.MatrixPayload{N: 1, RowPtr: []int{0, 1}, ColInd: []int{0}, Vals: []float64{1}}
		}, service.CodeBadRequest, 400},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := gridReq("acme", 8)
			tc.mutate(req)
			var resp service.SolveResponse
			serr := svc.Solve(context.Background(), req, &resp)
			if serr == nil {
				t.Fatal("expected a typed error")
			}
			if serr.Code != tc.code || serr.HTTPStatus() != tc.status {
				t.Fatalf("got %s/%d, want %s/%d (%v)", serr.Code, serr.HTTPStatus(), tc.code, tc.status, serr)
			}
		})
	}
}

// TestServiceFormatPoolKey checks that the format knob separates pooled
// sessions (different bound kernels must not share a session) while
// repeats with the same format still reuse, and that the solves agree.
func TestServiceFormatPoolKey(t *testing.T) {
	svc := newTestService(t, service.Config{})
	solve := func(format string) *service.SolveResponse {
		t.Helper()
		req := gridReq("acme", 12)
		req.Format = format
		req.ReturnSolution = true
		var resp service.SolveResponse
		if serr := svc.Solve(context.Background(), req, &resp); serr != nil {
			t.Fatalf("format=%q: %v", format, serr)
		}
		if !resp.Converged {
			t.Fatalf("format=%q did not converge", format)
		}
		return &resp
	}
	first := solve("sell")
	again := solve("sell")
	if !again.SessionReused {
		t.Fatal("same-format repeat should hit the pooled session")
	}
	other := solve("bcsr")
	if other.SessionReused {
		t.Fatal("a different format must not reuse the pooled session")
	}
	if st := svc.Stats(); st.Counters["sessions_built"] != 2 {
		t.Fatalf("sessions_built = %d, want 2", st.Counters["sessions_built"])
	}
	for i, v := range first.Solution {
		if v != other.Solution[i] {
			t.Fatalf("solutions diverge across formats at %d: %v vs %v", i, v, other.Solution[i])
		}
	}
}

func TestServiceReuseRejectsBadRHSLength(t *testing.T) {
	svc := newTestService(t, service.Config{})
	req := gridReq("acme", 8) // n = 64
	var resp service.SolveResponse
	if serr := svc.Solve(context.Background(), req, &resp); serr != nil {
		t.Fatalf("seed solve: %v", serr)
	}
	// A reuse request may omit the operator body, so validate cannot
	// size-check its RHS — the pool lookup must. This used to reach the
	// dispatcher's batch copy and panic on the short slice.
	bad := &service.SolveRequest{
		Tenant:   "acme",
		Backend:  "petsc",
		Params:   gmresParams(),
		Operator: service.OperatorRef{ID: "grid", Version: 1},
		RHS:      make([]float64, 7),
	}
	var badResp service.SolveResponse
	serr := svc.Solve(context.Background(), bad, &badResp)
	if serr == nil || serr.Code != service.CodeBadRequest || serr.HTTPStatus() != 400 {
		t.Fatalf("want %s/400, got %v", service.CodeBadRequest, serr)
	}
	// The rejection must not have touched the pooled session.
	var resp2 service.SolveResponse
	if serr := svc.Solve(context.Background(), req, &resp2); serr != nil {
		t.Fatalf("solve after rejected rhs: %v", serr)
	}
	if !resp2.SessionReused || !resp2.Converged {
		t.Fatalf("pooled session should have survived the rejection: %+v", resp2)
	}
}

func TestServiceOperatorConflict(t *testing.T) {
	svc := newTestService(t, service.Config{})
	var resp service.SolveResponse
	if serr := svc.Solve(context.Background(), gridReq("acme", 8), &resp); serr != nil {
		t.Fatal(serr)
	}
	changed := gridReq("acme", 10) // same id@version, different operator
	serr := svc.Solve(context.Background(), changed, &resp)
	if serr == nil || serr.Code != service.CodeOperatorConflict || serr.HTTPStatus() != 409 {
		t.Fatalf("got %v, want %s/409", serr, service.CodeOperatorConflict)
	}
}

func TestServiceSetupFailureIsTyped(t *testing.T) {
	svc := newTestService(t, service.Config{})
	req := gridReq("acme", 8)
	req.Params = map[string]string{"solver": "no-such-method"}
	var resp service.SolveResponse
	serr := svc.Solve(context.Background(), req, &resp)
	if serr == nil || serr.Code != service.CodeSetupFailed {
		t.Fatalf("got %v, want %s", serr, service.CodeSetupFailed)
	}
	// The failed entry must not stay pooled.
	if st := svc.Stats(); st.Sessions != 0 {
		t.Fatalf("failed session left in pool: %d", st.Sessions)
	}
}

func TestServiceDrain(t *testing.T) {
	svc, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var resp service.SolveResponse
	if serr := svc.Solve(context.Background(), gridReq("acme", 8), &resp); serr != nil {
		t.Fatal(serr)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	serr := svc.Solve(context.Background(), gridReq("acme", 8), &resp)
	if serr == nil || serr.Code != service.CodeServerClosed {
		t.Fatalf("post-drain solve: got %v, want %s", serr, service.CodeServerClosed)
	}
	if st := svc.Stats(); st.Sessions != 0 || !st.Draining {
		t.Fatalf("post-drain stats: %+v", st)
	}
}

func TestServiceHTTP(t *testing.T) {
	svc := newTestService(t, service.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func(t *testing.T, body any) (*http.Response, []byte) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	hr, body := post(t, gridReq("wire", 10))
	if hr.StatusCode != 200 {
		t.Fatalf("solve status %d: %s", hr.StatusCode, body)
	}
	var sr service.SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Converged || sr.Tenant != "wire" {
		t.Fatalf("wire response: %+v", sr)
	}

	// Typed error body for a bad request.
	hr, body = post(t, map[string]any{"tenant": "wire", "backend": "bogus",
		"operator": map[string]any{"id": "g", "grid_n": 4}})
	if hr.StatusCode != 400 {
		t.Fatalf("bad backend status %d", hr.StatusCode)
	}
	var wire struct {
		Error service.Error `json:"error"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Error.Code != service.CodeUnknownBackend {
		t.Fatalf("error code %q", wire.Error.Code)
	}

	// Unknown fields are rejected, not silently dropped.
	hr, _ = post(t, map[string]any{"tenant": "wire", "backend": "petsc", "bogus_field": 1})
	if hr.StatusCode != 400 {
		t.Fatalf("unknown field status %d", hr.StatusCode)
	}

	for _, ep := range []string{"/v1/healthz", "/v1/stats", "/v1/backends", "/debug/vars"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s status %d", ep, resp.StatusCode)
		}
	}

	var stats service.Stats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Counters["solved"] != 1 {
		t.Fatalf("stats solved = %d", stats.Counters["solved"])
	}
}

func TestServiceErrorString(t *testing.T) {
	svc := newTestService(t, service.Config{})
	var resp service.SolveResponse
	serr := svc.Solve(context.Background(), &service.SolveRequest{}, &resp)
	if serr == nil {
		t.Fatal("expected validation error")
	}
	if !strings.Contains(serr.Error(), service.CodeBadRequest) {
		t.Fatalf("Error() = %q", serr.Error())
	}
}

// mmBody renders a matrix as a verbatim Matrix Market file body — the
// exchange-format ingestion path of the operator spec.
func mmBody(t *testing.T, a *sparse.CSR, sym sparse.MMSymmetry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := sparse.WriteMatrixMarket(&buf, a, sym); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestServiceMatrixMarketOperator: a request may carry the operator as
// a verbatim .mtx body. Symmetric storage is expanded server-side, the
// solve converges against the expanded operator, and later requests
// ride the pooled session without resending the file.
func TestServiceMatrixMarketOperator(t *testing.T) {
	a := sparse.Laplace2D(7, 7)
	svc := newTestService(t, service.Config{})
	req := &service.SolveRequest{
		Tenant:  "acme",
		Backend: "petsc",
		Params:  gmresParams(),
		Procs:   2,
		Operator: service.OperatorRef{
			ID: "mtx", Version: 1,
			MatrixMarket: mmBody(t, a, sparse.MMSymmetric),
		},
		ReturnSolution: true,
	}
	var resp service.SolveResponse
	if serr := svc.Solve(context.Background(), req, &resp); serr != nil {
		t.Fatal(serr)
	}
	if !resp.Converged {
		t.Fatalf("not converged: %+v", resp)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	r := a.Residual(b, resp.Solution)
	if rel := sparse.Norm2(r) / sparse.Norm2(b); rel > 1e-6 {
		t.Fatalf("relative residual %.3e against the expanded operator", rel)
	}

	thin := &service.SolveRequest{
		Tenant: "acme", Backend: "petsc", Params: gmresParams(), Procs: 2,
		Operator: service.OperatorRef{ID: "mtx", Version: 1},
	}
	var resp2 service.SolveResponse
	if serr := svc.Solve(context.Background(), thin, &resp2); serr != nil {
		t.Fatal(serr)
	}
	if !resp2.SessionReused || !resp2.Converged {
		t.Fatalf("thin request: reused=%v converged=%v", resp2.SessionReused, resp2.Converged)
	}
}

// TestServiceMatrixMarketRejections: malformed, pattern, non-square
// and ambiguous operator bodies are typed 400s; an .mtx body colliding
// with a pooled grid operator under the same id@version is a typed 409.
func TestServiceMatrixMarketRejections(t *testing.T) {
	svc := newTestService(t, service.Config{})
	mmReq := func(body string) *service.SolveRequest {
		return &service.SolveRequest{
			Tenant: "acme", Backend: "petsc", Params: gmresParams(),
			Operator: service.OperatorRef{ID: "bad", Version: 1, MatrixMarket: body},
		}
	}
	cases := []struct {
		name string
		req  *service.SolveRequest
		code string
	}{
		{"pattern field", mmReq("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"), service.CodeBadRequest},
		{"malformed header", mmReq("%%MatrixMarket tensor coordinate real general\n1 1 1\n1 1 1\n"), service.CodeBadRequest},
		{"non-square", mmReq("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n"), service.CodeBadRequest},
		{"exclusive with grid_n", func() *service.SolveRequest {
			r := mmReq("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n")
			r.Operator.GridN = 4
			return r
		}(), service.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp service.SolveResponse
			serr := svc.Solve(context.Background(), tc.req, &resp)
			if serr == nil {
				t.Fatalf("expected a typed error, got %+v", resp)
			}
			if serr.Code != tc.code || serr.HTTPStatus() != 400 {
				t.Fatalf("got %s/%d, want %s/400 (%v)", serr.Code, serr.HTTPStatus(), tc.code, serr)
			}
		})
	}

	// Pool a grid operator, then collide an .mtx body into its slot.
	grid := gridReq("acme", 8)
	grid.Operator.ID, grid.Operator.Version = "shared", 2
	var resp service.SolveResponse
	if serr := svc.Solve(context.Background(), grid, &resp); serr != nil {
		t.Fatal(serr)
	}
	a := sparse.Tridiag(8, -1, 2, -1)
	coll := &service.SolveRequest{
		Tenant: "acme", Backend: "petsc", Params: gmresParams(),
		Operator: service.OperatorRef{ID: "shared", Version: 2, MatrixMarket: mmBody(t, a, sparse.MMGeneral)},
	}
	serr := svc.Solve(context.Background(), coll, &resp)
	if serr == nil {
		t.Fatal("expected an operator conflict")
	}
	if serr.Code != service.CodeOperatorConflict || serr.HTTPStatus() != 409 {
		t.Fatalf("got %s/%d, want %s/409", serr.Code, serr.HTTPStatus(), service.CodeOperatorConflict)
	}
}
