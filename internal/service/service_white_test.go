// White-box tests: shedding and batching need the dispatcher held at a
// deterministic point (dispatchGate), which only this package can reach.
package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/sparse"
)

func whiteParams() map[string]string {
	return map[string]string{
		"solver": "gmres", "preconditioner": "jacobi",
		"tol": "1e-8", "maxits": "500", "restart": "30",
	}
}

func whiteReq(tenant, opID string, gridN int) *SolveRequest {
	return &SolveRequest{
		Tenant:   tenant,
		Backend:  "petsc",
		Params:   whiteParams(),
		Operator: OperatorRef{ID: opID, Version: 1, GridN: gridN},
	}
}

// gatedService returns a service whose entry dispatchers block on the
// returned gate before serving their first job, so tests can fill
// queues deterministically.
func gatedService(t *testing.T, cfg Config) (*Service, chan struct{}) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	svc.dispatchGate = gate
	t.Cleanup(func() { _ = svc.Close() })
	return svc, gate
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// queuedJobs counts jobs sitting in entry queues (len on a channel is
// safe concurrently).
func queuedJobs(svc *Service) int {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	n := 0
	for _, e := range svc.entries {
		n += len(e.jobs)
	}
	return n
}

func TestServiceBatchCoalescing(t *testing.T) {
	const gridN = 8
	n := gridN * gridN
	svc, gate := gatedService(t, Config{MaxBatchRHS: 8})

	const k = 3
	type result struct {
		resp SolveResponse
		err  *Error
		rhs  []float64
	}
	results := make([]result, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rhs := make([]float64, n)
			for j := range rhs {
				rhs[j] = float64(i + 1)
			}
			req := whiteReq("acme", "op", gridN)
			req.RHS = rhs
			req.ReturnSolution = true
			results[i].rhs = rhs
			results[i].err = svc.Solve(context.Background(), req, &results[i].resp)
		}(i)
	}
	waitFor(t, "all jobs queued", func() bool { return queuedJobs(svc) == k })
	close(gate)
	wg.Wait()

	a, _, err := mesh.PaperProblem(gridN).GenerateGlobal()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("member %d: %v", i, r.err)
		}
		if !r.resp.Batched || r.resp.BatchNRHS != k {
			t.Fatalf("member %d: batched=%v batch_nrhs=%d, want true/%d", i, r.resp.Batched, r.resp.BatchNRHS, k)
		}
		if !r.resp.Converged {
			t.Fatalf("member %d not converged", i)
		}
		res := a.Residual(r.rhs, r.resp.Solution)
		if rel := sparse.Norm2(res) / sparse.Norm2(r.rhs); rel > 1e-6 {
			t.Fatalf("member %d: relative residual %.3e", i, rel)
		}
	}
	if got := svc.cnt.Batches.Load(); got != 1 {
		t.Fatalf("batches = %d, want 1 (one coalesced round)", got)
	}
	if got := svc.cnt.BatchedRequests.Load(); got != k {
		t.Fatalf("batched_requests = %d, want %d", got, k)
	}
}

func TestServiceQueueFullShedding(t *testing.T) {
	svc, gate := gatedService(t, Config{QueueDepth: 2, MaxBatchRHS: 1})
	var wg sync.WaitGroup
	errs := make([]*Error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp SolveResponse
			errs[i] = svc.Solve(context.Background(), whiteReq("acme", "op", 8), &resp)
		}(i)
	}
	waitFor(t, "queue filled", func() bool { return queuedJobs(svc) == 2 })

	var resp SolveResponse
	serr := svc.Solve(context.Background(), whiteReq("acme", "op", 8), &resp)
	if serr == nil || serr.Code != CodeQueueFull || serr.HTTPStatus() != 429 {
		t.Fatalf("got %v, want %s/429", serr, CodeQueueFull)
	}
	if !serr.Retryable {
		t.Fatal("queue_full must be retryable")
	}
	close(gate)
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			t.Fatalf("queued request %d failed: %v", i, e)
		}
	}
	if got := svc.cnt.ShedQueueFull.Load(); got != 1 {
		t.Fatalf("shed_queue_full = %d, want 1", got)
	}
}

func TestServiceTenantQuota(t *testing.T) {
	svc, gate := gatedService(t, Config{TenantMaxPending: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	var firstErr *Error
	go func() {
		defer wg.Done()
		var resp SolveResponse
		firstErr = svc.Solve(context.Background(), whiteReq("acme", "op", 8), &resp)
	}()
	waitFor(t, "first request pending", func() bool {
		return svc.Stats().Tenants["acme"].Pending == 1
	})

	var resp SolveResponse
	serr := svc.Solve(context.Background(), whiteReq("acme", "op", 8), &resp)
	if serr == nil || serr.Code != CodeTenantQuota || serr.HTTPStatus() != 429 {
		t.Fatalf("got %v, want %s/429", serr, CodeTenantQuota)
	}
	// Another tenant is not throttled by acme's quota: it sheds only if
	// it hits its own limits (here it would build a new gated entry, so
	// just verify admission passes the quota check by checking the shed
	// counter attribution).
	if got := svc.Stats().Tenants["acme"].Shed; got != 1 {
		t.Fatalf("acme shed = %d, want 1", got)
	}
	close(gate)
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("first request: %v", firstErr)
	}
}

func TestServiceOverloaded(t *testing.T) {
	svc, gate := gatedService(t, Config{MaxPending: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var resp SolveResponse
		_ = svc.Solve(context.Background(), whiteReq("acme", "op", 8), &resp)
	}()
	waitFor(t, "first request pending", func() bool { return svc.pending.Load() == 1 })

	var resp SolveResponse
	serr := svc.Solve(context.Background(), whiteReq("beta", "op", 8), &resp)
	if serr == nil || serr.Code != CodeOverloaded || serr.HTTPStatus() != 503 {
		t.Fatalf("got %v, want %s/503", serr, CodeOverloaded)
	}
	close(gate)
	wg.Wait()
}

func TestServicePoolFullWhenBusy(t *testing.T) {
	svc, gate := gatedService(t, Config{MaxSessions: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var resp SolveResponse
		_ = svc.Solve(context.Background(), whiteReq("acme", "opA", 8), &resp)
	}()
	waitFor(t, "opA pending", func() bool { return queuedJobs(svc) == 1 })

	var resp SolveResponse
	serr := svc.Solve(context.Background(), whiteReq("acme", "opB", 8), &resp)
	if serr == nil || serr.Code != CodePoolFull || serr.HTTPStatus() != 503 {
		t.Fatalf("got %v, want %s/503", serr, CodePoolFull)
	}
	close(gate)
	wg.Wait()
	if got := svc.cnt.ShedPoolFull.Load(); got != 1 {
		t.Fatalf("shed_pool_full = %d, want 1", got)
	}
}

// TestServiceDrainWhileInflight pins the SIGTERM semantics: in-flight
// solves finish and succeed, concurrent new requests are shed with the
// typed draining status, and Drain returns cleanly.
func TestServiceDrainWhileInflight(t *testing.T) {
	svc, gate := gatedService(t, Config{})
	var wg sync.WaitGroup
	wg.Add(1)
	var inflight SolveResponse
	var inflightErr *Error
	go func() {
		defer wg.Done()
		inflightErr = svc.Solve(context.Background(), whiteReq("acme", "op", 10), &inflight)
	}()
	waitFor(t, "request in flight", func() bool { return queuedJobs(svc) == 1 })

	drainDone := make(chan error, 1)
	go func() { drainDone <- svc.Drain(context.Background()) }()
	waitFor(t, "draining flag", svc.Draining)

	var resp SolveResponse
	serr := svc.Solve(context.Background(), whiteReq("acme", "op", 10), &resp)
	if serr == nil || serr.Code != CodeDraining || serr.HTTPStatus() != 503 {
		t.Fatalf("got %v, want %s/503", serr, CodeDraining)
	}

	close(gate) // let the in-flight solve run
	wg.Wait()
	if inflightErr != nil {
		t.Fatalf("in-flight request failed during drain: %v", inflightErr)
	}
	if !inflight.Converged {
		t.Fatal("in-flight request did not converge")
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
	if st := svc.Stats(); st.Sessions != 0 {
		t.Fatalf("sessions after drain = %d, want 0", st.Sessions)
	}
}

// TestServiceForcedDrain pins the timeout path: a drain whose context
// expires aborts the remaining worlds instead of waiting forever.
func TestServiceForcedDrain(t *testing.T) {
	svc, _ := gatedService(t, Config{}) // gate never released: solve hangs
	var wg sync.WaitGroup
	wg.Add(1)
	var inflightErr *Error
	go func() {
		defer wg.Done()
		var resp SolveResponse
		inflightErr = svc.Solve(context.Background(), whiteReq("acme", "op", 8), &resp)
	}()
	waitFor(t, "request in flight", func() bool { return queuedJobs(svc) == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); err == nil {
		t.Fatal("forced drain should report the context cause")
	}
	wg.Wait()
	if inflightErr == nil {
		t.Fatal("the stranded request must fail with a typed status")
	}
	if inflightErr.Code != CodeSolveAborted && inflightErr.Code != CodeSessionAborted {
		t.Fatalf("stranded request code = %s", inflightErr.Code)
	}
}

func TestServicePoolKeyIsolation(t *testing.T) {
	base := whiteReq("acme", "op", 8)
	for i, mutate := range []func(*SolveRequest){
		func(r *SolveRequest) { r.Tenant = "beta" },
		func(r *SolveRequest) { r.Backend = "superlu" },
		func(r *SolveRequest) { r.Procs = 2 },
		func(r *SolveRequest) { r.Operator.Version = 2 },
		func(r *SolveRequest) { r.Params["tol"] = "1e-6" },
		func(r *SolveRequest) { r.MaxAttempts = 3 },
		func(r *SolveRequest) { r.Failover = []string{"superlu"} },
		func(r *SolveRequest) { r.Telemetry = true },
	} {
		other := whiteReq("acme", "op", 8)
		mutate(other)
		if base.key() == other.key() {
			t.Errorf("mutation %d did not change the pool key %q", i, base.key())
		}
	}
	same := whiteReq("acme", "op", 8)
	if base.key() != same.key() {
		t.Errorf("identical requests have different keys: %q vs %q", base.key(), same.key())
	}
}

func TestMergedContextUncancellableMember(t *testing.T) {
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	merged, stop := mergedContext([]*job{{ctx: ctx1}, {ctx: context.Background()}})
	defer stop()
	if merged.Done() != nil {
		t.Fatal("a batch with an uncancellable member must get an uncancellable merged context")
	}
	cancel1()
	select {
	case <-merged.Done():
		t.Fatal("merged context cancelled while an uncancellable member was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMergedContextAllMembersCancel(t *testing.T) {
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	merged, stop := mergedContext([]*job{{ctx: ctx1}, {ctx: ctx2}})
	defer stop()
	cancel1()
	select {
	case <-merged.Done():
		t.Fatal("merged context cancelled before every member hung up")
	case <-time.After(50 * time.Millisecond):
	}
	cancel2()
	select {
	case <-merged.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("merged context did not cancel after every member hung up")
	}
}

func TestEvenStartsMatchesLayout(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 1}, {10, 3}, {64, 4}, {7, 7}, {100, 8}} {
		starts := evenStarts(tc.n, tc.p)
		if starts[tc.p] != tc.n {
			t.Fatalf("evenStarts(%d,%d) ends at %d", tc.n, tc.p, starts[tc.p])
		}
		q, rem := tc.n/tc.p, tc.n%tc.p
		for r := 0; r < tc.p; r++ {
			want := q
			if r < rem {
				want++
			}
			if got := starts[r+1] - starts[r]; got != want {
				t.Fatalf("evenStarts(%d,%d) rank %d has %d rows, want %d", tc.n, tc.p, r, got, want)
			}
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	for name, v := range map[string]int{
		"DefaultProcs": cfg.DefaultProcs, "MaxProcs": cfg.MaxProcs,
		"MaxSessions": cfg.MaxSessions, "QueueDepth": cfg.QueueDepth,
		"MaxPending": cfg.MaxPending, "TenantMaxPending": cfg.TenantMaxPending,
		"MaxBatchRHS": cfg.MaxBatchRHS, "MaxNRHS": cfg.MaxNRHS, "MaxUnknowns": cfg.MaxUnknowns,
	} {
		if v <= 0 {
			t.Errorf("%s defaulted to %d", name, v)
		}
	}
	if cfg.MaxBodyBytes <= 0 || cfg.DrainTimeout <= 0 {
		t.Error("body/drain defaults missing")
	}
	if cfg.SolveTimeout != 0 {
		t.Error("SolveTimeout must default to disabled")
	}
}

func TestNewRejectsFaultSpecWithoutEnable(t *testing.T) {
	if _, err := New(Config{FaultSpec: "seed=1,pcrash=1"}); err == nil {
		t.Fatal("New must reject FaultSpec without EnableFaultInjection")
	}
	if !faultInjectionCompiled {
		if _, err := New(Config{EnableFaultInjection: true, FaultSpec: "seed=1,pcrash=1"}); err == nil {
			t.Fatal("New must reject FaultSpec in a production build")
		}
	}
}
