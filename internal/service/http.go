package service

import (
	"encoding/json"
	"errors"
	"expvar"
	"net/http"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// faultSpecHeader lets test clients inject a fault schedule without
// touching the JSON body (chaos builds only; see SolveRequest.FaultSpec).
const faultSpecHeader = "X-Lisi-Fault-Spec"

// Handler returns the service's HTTP surface:
//
//	POST /v1/solve    — solve one system (SolveRequest → SolveResponse)
//	GET  /v1/healthz  — 200 while serving, 503 once draining
//	GET  /v1/stats    — admission/pool/tenant counters (Stats)
//	GET  /v1/backends — registered backend names
//	GET  /debug/vars  — expvar, including the aggregate solve telemetry
//
// Error responses are {"error": Error} with the status from
// Error.HTTPStatus; clients branch on error.code.
func (s *Service) Handler() http.Handler {
	telemetry.Publish("lisi.service", s.agg)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/backends", handleBackends)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	req := &SolveRequest{}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, errf(CodeBadRequest, http.StatusRequestEntityTooLarge, false,
				"request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, errf(CodeBadRequest, 400, false, "decoding request: %v", err))
		return
	}
	if h := r.Header.Get(faultSpecHeader); h != "" {
		req.FaultSpec = h
	}
	resp := &SolveResponse{}
	if serr := s.Solve(r.Context(), req, resp); serr != nil {
		writeError(w, serr)
		return
	}
	writeJSON(w, 200, resp)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, 503, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, 200, map[string]string{"status": "ok"})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, 200, s.Stats())
}

func handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, 200, map[string][]string{"backends": core.Names()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *Error) {
	writeJSON(w, e.HTTPStatus(), map[string]*Error{"error": e})
}
