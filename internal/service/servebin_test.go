package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

// TestServeBinary drives a real lisi-serve process over HTTP: concurrent
// multi-tenant traffic, then a SIGTERM graceful drain — the in-flight
// solve must finish with a 200, new requests must be shed, and the
// process must exit 0. It runs only when LISI_SERVE_BIN points at a
// built binary (the service-integration CI job sets it); `go test`
// alone skips it so the tier-1 suite needs no build step ordering.
func TestServeBinary(t *testing.T) {
	bin := os.Getenv("LISI_SERVE_BIN")
	if bin == "" {
		t.Skip("LISI_SERVE_BIN not set; run via the service-integration CI job or set it to a built lisi-serve")
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-procs", "2",
		"-solve-timeout", "120s",
		"-drain-timeout", "120s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// exited is closed after the exit status is delivered so both the
	// test body and the deferred cleanup can wait on it.
	exited := make(chan error, 1)
	defer func() {
		cmd.Process.Kill()
		<-exited
	}()

	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "lisi-serve listening on "); ok {
				addrCh <- rest
			}
		}
	}()
	go func() { exited <- cmd.Wait(); close(exited) }()

	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-exited:
		t.Fatalf("lisi-serve exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("lisi-serve never reported its listen address")
	}

	client := &http.Client{Timeout: 120 * time.Second}
	solve := func(req *service.SolveRequest) (int, *service.SolveResponse, *service.Error, error) {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil, nil, err
		}
		defer hr.Body.Close()
		if hr.StatusCode == http.StatusOK {
			var resp service.SolveResponse
			if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
				return hr.StatusCode, nil, nil, err
			}
			return hr.StatusCode, &resp, nil, nil
		}
		var wire struct {
			Error service.Error `json:"error"`
		}
		if err := json.NewDecoder(hr.Body).Decode(&wire); err != nil {
			return hr.StatusCode, nil, nil, err
		}
		return hr.StatusCode, nil, &wire.Error, nil
	}
	gridReq := func(tenant string, gridN, nRhs int) *service.SolveRequest {
		return &service.SolveRequest{
			Tenant:  tenant,
			Backend: "petsc",
			Params: map[string]string{
				"solver": "gmres", "preconditioner": "jacobi",
				"tol": "1e-8", "maxits": "20000"},
			Operator: service.OperatorRef{ID: fmt.Sprintf("grid%d", gridN), Version: 1, GridN: gridN},
			NRHS:     nRhs,
		}
	}

	// Phase 1: concurrent multi-tenant traffic. Each tenant reuses its
	// own pooled session after the first request.
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for _, tenant := range []string{"acme", "globex", "initech"} {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				code, resp, werr, err := solve(gridReq(tenant, 12, 1))
				if err != nil || code != 200 || !resp.Converged {
					errs <- fmt.Errorf("tenant %s: code=%d resp=%+v werr=%v err=%v", tenant, code, resp, werr, err)
				}
			}(tenant)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Phase 2: graceful drain. Launch a heavyweight solve, SIGTERM the
	// server while it runs, and check the drain contract from outside.
	slow := make(chan error, 1)
	go func() {
		code, resp, werr, err := solve(gridReq("acme", 96, 4))
		switch {
		case err != nil:
			slow <- fmt.Errorf("in-flight solve transport error: %v", err)
		case code != 200:
			slow <- fmt.Errorf("in-flight solve shed during drain: code=%d werr=%v", code, werr)
		case !resp.Converged:
			slow <- fmt.Errorf("in-flight solve did not converge: %+v", resp)
		default:
			slow <- nil
		}
	}()
	time.Sleep(200 * time.Millisecond) // let the slow request enter the server
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the drain flag flip

	// New work is shed while draining (503 + typed code); once the
	// listener closes, connections are refused — both count as shed.
	code, _, werr, err := solve(gridReq("globex", 12, 1))
	if err == nil {
		if code != 503 {
			t.Fatalf("request during drain: code=%d werr=%v, want 503", code, werr)
		}
		if werr == nil || (werr.Code != service.CodeDraining && werr.Code != service.CodeServerClosed) {
			t.Fatalf("request during drain: error %v, want %s", werr, service.CodeDraining)
		}
	}

	if err := <-slow; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("lisi-serve did not exit cleanly after drain: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("lisi-serve did not exit after SIGTERM")
	}
}
