package mg

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/pmat"
	"repro/internal/slu"
	"repro/internal/sparse"
)

// directCoarse is a plain direct coarse solve for the library-level
// tests (the LISI-re-entrant coarse solve is tested in package core).
func directCoarse(a *sparse.CSR, b []float64) ([]float64, error) {
	f, err := slu.Factor(a, slu.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

func run(t *testing.T, p int, fn func(c *comm.Comm)) {
	t.Helper()
	w, err := comm.NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(fn); err != nil {
		t.Fatalf("Run on %d ranks: %v", p, err)
	}
}

func TestHierarchyDepth(t *testing.T) {
	run(t, 1, func(c *comm.Comm) {
		p := mesh.PaperProblem(31)
		s, err := New(c, p, Options{Coarse: directCoarse})
		if err != nil {
			t.Fatal(err)
		}
		// 31 -> 15 -> 7 -> 3
		if s.Levels() != 4 {
			t.Errorf("levels = %d, want 4", s.Levels())
		}
	})
}

func TestVCycleSolvesPaperProblem(t *testing.T) {
	p := mesh.PaperProblem(31)
	aG, bG, err := p.GenerateGlobal()
	if err != nil {
		t.Fatal(err)
	}
	f, err := slu.Factor(aG, slu.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := f.Solve(bG)
	if err != nil {
		t.Fatal(err)
	}
	for _, np := range []int{1, 2, 3} {
		run(t, np, func(c *comm.Comm) {
			s, err := New(c, p, Options{Coarse: directCoarse, Tol: 1e-10})
			if err != nil {
				t.Fatal(err)
			}
			l := s.FineLayout()
			b := make([]float64, l.LocalN)
			copy(b, bG[l.Start:l.Start+l.LocalN])
			x := make([]float64, l.LocalN)
			if err := s.Solve(b, x); err != nil {
				t.Fatalf("p=%d: %v", np, err)
			}
			got := pmat.AllGather(l, x)
			for i := range ref {
				if math.Abs(got[i]-ref[i]) > 1e-6 {
					t.Fatalf("p=%d: x[%d] err %g", np, i, math.Abs(got[i]-ref[i]))
				}
			}
			if s.Cycles() < 1 || s.Cycles() > 40 {
				t.Errorf("p=%d: %d cycles", np, s.Cycles())
			}
		})
	}
}

func TestNearGridIndependentConvergence(t *testing.T) {
	// The multigrid hallmark: cycle counts stay bounded as the grid
	// refines (unlike single-level iterations, which grow).
	cycles := map[int]int{}
	for _, n := range []int{15, 31, 63} {
		p := mesh.PaperProblem(n)
		run(t, 2, func(c *comm.Comm) {
			s, err := New(c, p, Options{Coarse: directCoarse, Tol: 1e-8})
			if err != nil {
				t.Fatal(err)
			}
			l := s.FineLayout()
			_, b, err := p.GenerateLocal(l)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, l.LocalN)
			if err := s.Solve(b, x); err != nil {
				t.Fatal(err)
			}
			if c.Rank() == 0 {
				cycles[n] = s.Cycles()
			}
		})
	}
	for n, cy := range cycles {
		if cy > 30 {
			t.Errorf("n=%d: %d cycles — not multigrid-like", n, cy)
		}
	}
	if cycles[63] > cycles[15]*3 {
		t.Errorf("cycle growth too strong: %v", cycles)
	}
}

func TestProlongationIsScaledRestrictionTranspose(t *testing.T) {
	// Full weighting and bilinear interpolation satisfy P = 4·Rᵀ.
	run(t, 2, func(c *comm.Comm) {
		p := mesh.PaperProblem(7)
		s, err := New(c, p, Options{Coarse: directCoarse})
		if err != nil {
			t.Fatal(err)
		}
		lvl := s.levels[0]
		r := lvl.restrict.GatherGlobal()
		pr := lvl.prolong.GatherGlobal()
		rt := r.Transpose()
		for i := range rt.Vals {
			rt.Vals[i] *= 4
		}
		if !rt.AlmostEqual(pr, 1e-14) {
			t.Error("P != 4·Rᵀ")
		}
	})
}

func TestConstructionErrors(t *testing.T) {
	run(t, 1, func(c *comm.Comm) {
		p := mesh.PaperProblem(31)
		if _, err := New(c, p, Options{}); err == nil {
			t.Error("missing Coarse accepted")
		}
		rect := p
		rect.Ny = 30
		if _, err := New(c, rect, Options{Coarse: directCoarse}); err == nil {
			t.Error("non-square grid accepted")
		}
		even := mesh.PaperProblem(32)
		if _, err := New(c, even, Options{Coarse: directCoarse}); err == nil {
			t.Error("even grid accepted")
		}
		tiny := mesh.PaperProblem(5)
		if _, err := New(c, tiny, Options{Coarse: directCoarse}); err == nil {
			t.Error("non-coarsenable grid accepted")
		}
	})
}

func TestSolveArgValidation(t *testing.T) {
	run(t, 1, func(c *comm.Comm) {
		p := mesh.PaperProblem(15)
		s, err := New(c, p, Options{Coarse: directCoarse})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Solve(make([]float64, 3), make([]float64, 3)); err == nil {
			t.Error("wrong vector lengths accepted")
		}
	})
}

func TestCoarseFailurePropagates(t *testing.T) {
	run(t, 1, func(c *comm.Comm) {
		p := mesh.PaperProblem(15)
		fail := func(a *sparse.CSR, b []float64) ([]float64, error) {
			return nil, errFail
		}
		s, err := New(c, p, Options{Coarse: fail})
		if err != nil {
			t.Fatal(err)
		}
		l := s.FineLayout()
		_, b, _ := p.GenerateLocal(l)
		x := make([]float64, l.LocalN)
		if err := s.Solve(b, x); err == nil {
			t.Error("coarse failure not propagated")
		}
	})
}

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "synthetic coarse failure" }

func TestCyclesBeatSmootherAlone(t *testing.T) {
	// Ablation shape: a pure smoother stalls where the V-cycle converges.
	p := mesh.PaperProblem(31)
	run(t, 1, func(c *comm.Comm) {
		s, err := New(c, p, Options{Coarse: directCoarse, Tol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		l := s.FineLayout()
		aLoc, b, _ := p.GenerateLocal(l)
		x := make([]float64, l.LocalN)
		if err := s.Solve(b, x); err != nil {
			t.Fatal(err)
		}
		mgWork := s.Cycles() * (s.Levels() * 4) // rough smoother-sweep equivalents

		// Same work in plain damped Jacobi on the fine level.
		a, err := pmat.NewMat(l, aLoc)
		if err != nil {
			t.Fatal(err)
		}
		d := a.Diagonal()
		xj := make([]float64, l.LocalN)
		r := make([]float64, l.LocalN)
		for it := 0; it < mgWork; it++ {
			a.Apply(r, xj)
			for i := range xj {
				xj[i] += 0.8 * (b[i] - r[i]) / d[i]
			}
		}
		resMG := a.Residual(b, x)
		resJac := a.Residual(b, xj)
		if resMG*100 > resJac {
			t.Errorf("V-cycle (%g) not clearly better than Jacobi (%g) at equal work", resMG, resJac)
		}
	})
}

func TestGalerkinHierarchyConverges(t *testing.T) {
	p := mesh.PaperProblem(31)
	aG, bG, err := p.GenerateGlobal()
	if err != nil {
		t.Fatal(err)
	}
	f, err := slu.Factor(aG, slu.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := f.Solve(bG)
	if err != nil {
		t.Fatal(err)
	}
	run(t, 2, func(c *comm.Comm) {
		s, err := New(c, p, Options{Coarse: directCoarse, Tol: 1e-10, Galerkin: true})
		if err != nil {
			t.Fatal(err)
		}
		l := s.FineLayout()
		b := make([]float64, l.LocalN)
		copy(b, bG[l.Start:l.Start+l.LocalN])
		x := make([]float64, l.LocalN)
		if err := s.Solve(b, x); err != nil {
			t.Fatal(err)
		}
		got := pmat.AllGather(l, x)
		for i := range ref {
			if math.Abs(got[i]-ref[i]) > 1e-6 {
				t.Fatalf("galerkin: x[%d] err %g", i, math.Abs(got[i]-ref[i]))
			}
		}
		if s.Cycles() > 30 {
			t.Errorf("galerkin hierarchy took %d cycles", s.Cycles())
		}
	})
}

func TestGalerkinAndGeometricBothWork(t *testing.T) {
	// Ablation for the hierarchy-construction design choice: both coarse
	// operator constructions converge; record their cycle counts agree
	// within a small factor on the model problem.
	p := mesh.PaperProblem(31)
	cycles := map[bool]int{}
	for _, galerkin := range []bool{false, true} {
		run(t, 1, func(c *comm.Comm) {
			s, err := New(c, p, Options{Coarse: directCoarse, Tol: 1e-8, Galerkin: galerkin})
			if err != nil {
				t.Fatal(err)
			}
			l := s.FineLayout()
			_, b, _ := p.GenerateLocal(l)
			x := make([]float64, l.LocalN)
			if err := s.Solve(b, x); err != nil {
				t.Fatal(err)
			}
			cycles[galerkin] = s.Cycles()
		})
	}
	if cycles[true] > 3*cycles[false]+3 || cycles[false] > 3*cycles[true]+3 {
		t.Errorf("hierarchy constructions disagree wildly: %v", cycles)
	}
}

func TestWCycleConverges(t *testing.T) {
	p := mesh.PaperProblem(31)
	cycles := map[int]int{}
	for _, gamma := range []int{1, 2} {
		run(t, 2, func(c *comm.Comm) {
			s, err := New(c, p, Options{Coarse: directCoarse, Tol: 1e-9, Gamma: gamma})
			if err != nil {
				t.Fatal(err)
			}
			l := s.FineLayout()
			_, b, _ := p.GenerateLocal(l)
			x := make([]float64, l.LocalN)
			if err := s.Solve(b, x); err != nil {
				t.Fatalf("gamma=%d: %v", gamma, err)
			}
			if c.Rank() == 0 {
				cycles[gamma] = s.Cycles()
			}
		})
	}
	// A W-cycle does strictly more coarse work per cycle, so it needs at
	// most as many cycles as the V-cycle.
	if cycles[2] > cycles[1] {
		t.Errorf("W-cycle (%d) took more cycles than V-cycle (%d)", cycles[2], cycles[1])
	}
}
