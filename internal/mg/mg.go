// Package mg implements the multilevel extension the paper defers to
// future work (§5.2 use case e, §9): a distributed geometric multigrid
// V-cycle for the paper's model PDE on square grids. It demonstrates the
// recursion pattern LISI anticipates — a multilevel solver built *on top
// of* the interface, with the coarsest-level solve delegated to a LISI
// SparseSolver through a callback so each level's solve re-enters the
// interface.
//
// The hierarchy coarsens n → (n−1)/2 (fine grids of size 2^k − 1 coarsen
// all the way down), with damped-Jacobi smoothing, full-weighting
// restriction and bilinear prolongation as distributed rectangular
// operators.
package mg

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/par"
	"repro/internal/pmat"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// CoarseSolve solves the (small, gathered) coarsest system on every rank
// and returns the full solution vector. The core package supplies a
// closure that drives a LISI SparseSolver component, which is the
// paper's "use LISI on each level" recursion.
type CoarseSolve func(a *sparse.CSR, b []float64) ([]float64, error)

// Options tune the V-cycle.
type Options struct {
	// Nu1, Nu2 are pre-/post-smoothing sweep counts (default 2).
	Nu1, Nu2 int
	// Omega is the Jacobi damping factor (default 0.8).
	Omega float64
	// MaxCycles bounds the V-cycle count (default 50).
	MaxCycles int
	// Tol is the relative residual tolerance (default 1e-8).
	Tol float64
	// CoarsestN stops coarsening when the grid is this size or smaller
	// (default 3).
	CoarsestN int
	// Galerkin selects algebraically computed coarse operators
	// A_{l+1} = R·A_l·P instead of re-discretizing the PDE on each
	// coarser grid (the two classic ways of building a hierarchy).
	Galerkin bool
	// Gamma is the cycle index: 1 is a V-cycle (default), 2 a W-cycle
	// (each level recurses twice into the next coarser level).
	Gamma int
	// Coarse solves the coarsest gathered system; required.
	Coarse CoarseSolve
}

func (o *Options) setDefaults() {
	if o.Nu1 == 0 {
		o.Nu1 = 2
	}
	if o.Nu2 == 0 {
		o.Nu2 = 2
	}
	if o.Omega == 0 {
		o.Omega = 0.8
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 50
	}
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.CoarsestN == 0 {
		o.CoarsestN = 3
	}
	if o.Gamma == 0 {
		o.Gamma = 1
	}
}

// level holds one grid's distributed operator and transfer operators.
type level struct {
	n       int // grid size (n×n interior points)
	layout  *pmat.Layout
	a       *pmat.Mat
	invDiag []float64
	// restrict maps this level's residual to the next coarser level
	// (nil on the coarsest); prolong maps coarse corrections up.
	restrict *pmat.Mat
	prolong  *pmat.Mat
	// scratch vectors, local lengths.
	r, z []float64
	// bc/xc hold the restricted rhs and coarse correction for the next
	// coarser level (nil on the coarsest); bGlobal is the coarsest
	// level's persistent AllGather buffer. All are sized at setup so the
	// cycling loop never allocates.
	bc, xc  []float64
	bGlobal []float64
}

// Solver is a ready multigrid hierarchy for one problem instance.
type Solver struct {
	c       *comm.Comm
	opts    Options
	levels  []*level
	coarseA *sparse.CSR // gathered coarsest operator (every rank)
	cycles  int
	rnorm   float64
	rec     *telemetry.Recorder
	pool    *par.Pool
	jac     jacobiTask
}

// SetPool attaches an intra-rank worker pool to every level's operator
// applies (fine and transfer operators) and to the damped-Jacobi
// smoother update. The update is element-wise, so a static partition is
// bitwise-neutral: results are identical for any worker count.
// Idempotent and cheap, so callers may invoke it per solve.
func (s *Solver) SetPool(p *par.Pool) {
	s.pool = p
	for _, lvl := range s.levels {
		lvl.a.SetPool(p)
		if lvl.restrict != nil {
			lvl.restrict.SetPool(p)
		}
		if lvl.prolong != nil {
			lvl.prolong.SetPool(p)
		}
	}
}

// SetFormat selects the local SpMV storage format for every level's
// operator and transfer products. Each matrix decides (and, for auto,
// probes) independently — coarse levels and the rectangular transfer
// operators typically fall back to CSR via the probe's small-matrix
// heuristic. The returned info is the fine-level operator's binding
// with the probe cost summed over all levels; the bool reports whether
// any matrix (re)bound.
func (s *Solver) SetFormat(fc sparse.FormatChoice) (pmat.FormatInfo, bool) {
	var fine pmat.FormatInfo
	var probeNS int64
	probed, changed := false, false
	for li, lvl := range s.levels {
		mats := []*pmat.Mat{lvl.a, lvl.restrict, lvl.prolong}
		for mi, m := range mats {
			if m == nil {
				continue
			}
			info, ch := m.SetFormat(fc)
			changed = changed || ch
			probeNS += info.ProbeNS
			probed = probed || info.Probed
			if li == 0 && mi == 0 {
				fine = info
			}
		}
	}
	fine.ProbeNS = probeNS
	fine.Probed = probed
	return fine, changed
}

// jacobiTask is one damped-Jacobi update x ← x + ω·D⁻¹(b − A·x) with the
// residual A·x already in r; each index is written by exactly one slot.
type jacobiTask struct {
	x, b, r, invDiag []float64
	omega            float64
}

func (t *jacobiTask) Range(_, lo, hi int) {
	for i := lo; i < hi; i++ {
		t.x[i] += t.omega * (t.b[i] - t.r[i]) * t.invDiag[i]
	}
}

// SetRecorder attaches a telemetry recorder: the cycling loop is timed
// into PhaseIterate, per-cycle residuals feed the trace, and V-/W-cycle
// counts land in the "mg.cycles" counter. Nil disables instrumentation.
func (s *Solver) SetRecorder(r *telemetry.Recorder) { s.rec = r }

// New builds the hierarchy for the problem (collective). p.Nx must equal
// p.Ny and coarsen at least once (n odd and ≥ 2·CoarsestN+1).
func New(c *comm.Comm, p mesh.Problem, opts Options) (*Solver, error) {
	opts.setDefaults()
	if opts.Coarse == nil {
		return nil, fmt.Errorf("mg: Options.Coarse is required")
	}
	if p.Nx != p.Ny {
		return nil, fmt.Errorf("mg: grid must be square, got %dx%d", p.Nx, p.Ny)
	}
	if p.Nx%2 == 0 || p.Nx < 2*opts.CoarsestN+1 {
		return nil, fmt.Errorf("mg: grid size %d cannot coarsen (need odd n ≥ %d; sizes 2^k−1 coarsen fully)", p.Nx, 2*opts.CoarsestN+1)
	}
	s := &Solver{c: c, opts: opts}

	prob := p
	var galerkinLocal *sparse.CSR // coarse operator rows for this rank (Galerkin mode)
	for {
		var lvl *level
		var err error
		if galerkinLocal == nil {
			lvl, err = buildLevel(c, prob)
		} else {
			lvl, err = buildLevelFromLocal(c, prob.Nx, galerkinLocal)
		}
		if err != nil {
			return nil, err
		}
		s.levels = append(s.levels, lvl)
		if prob.Nx <= opts.CoarsestN || prob.Nx%2 == 0 || (prob.Nx-1)/2 < opts.CoarsestN {
			break
		}
		coarse := prob
		coarse.Nx = (prob.Nx - 1) / 2
		coarse.Ny = coarse.Nx
		cl, err := pmat.EvenLayout(c, coarse.Nx*coarse.Ny)
		if err != nil {
			return nil, err
		}
		if lvl.restrict, err = buildRestriction(cl, lvl.layout, coarse.Nx, prob.Nx); err != nil {
			return nil, err
		}
		if lvl.prolong, err = buildProlongation(lvl.layout, cl, prob.Nx, coarse.Nx); err != nil {
			return nil, err
		}
		if opts.Galerkin {
			// Triple product on the gathered operators; coarse grids are
			// small, so the serial RAP at setup is cheap relative to the
			// fine-level work.
			rap, err := sparse.TripleProduct(
				lvl.restrict.GatherGlobal(),
				lvl.a.GatherGlobal(),
				lvl.prolong.GatherGlobal())
			if err != nil {
				return nil, fmt.Errorf("mg: Galerkin coarse operator: %w", err)
			}
			galerkinLocal = rap.SubMatrix(cl.Start, cl.Start+cl.LocalN)
		}
		prob = coarse
	}

	// Gather the coarsest operator for the LISI coarse solve.
	last := s.levels[len(s.levels)-1]
	s.coarseA = last.a.GatherGlobal()

	// Size the per-level cycling scratch so Solve allocates nothing.
	for k := 0; k+1 < len(s.levels); k++ {
		next := s.levels[k+1]
		s.levels[k].bc = make([]float64, next.layout.LocalN)
		s.levels[k].xc = make([]float64, next.layout.LocalN)
	}
	last.bGlobal = make([]float64, last.layout.N)
	return s, nil
}

func buildLevel(c *comm.Comm, p mesh.Problem) (*level, error) {
	l, err := pmat.EvenLayout(c, p.N())
	if err != nil {
		return nil, err
	}
	localA, _, err := p.GenerateLocal(l)
	if err != nil {
		return nil, err
	}
	return levelFromParts(p.Nx, l, localA)
}

// buildLevelFromLocal builds a level whose operator rows were computed
// algebraically (Galerkin) rather than by discretization.
func buildLevelFromLocal(c *comm.Comm, n int, localA *sparse.CSR) (*level, error) {
	l, err := pmat.EvenLayout(c, n*n)
	if err != nil {
		return nil, err
	}
	return levelFromParts(n, l, localA)
}

func levelFromParts(n int, l *pmat.Layout, localA *sparse.CSR) (*level, error) {
	a, err := pmat.NewMat(l, localA)
	if err != nil {
		return nil, err
	}
	d := a.Diagonal()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("mg: zero diagonal on level n=%d", n)
		}
		inv[i] = 1 / v
	}
	return &level{
		n: n, layout: l, a: a, invDiag: inv,
		r: make([]float64, l.LocalN),
		z: make([]float64, l.LocalN),
	}, nil
}

// buildRestriction assembles the full-weighting operator R (coarse×fine):
// coarse point (CI,CJ) sits at fine (2CI+1, 2CJ+1) and averages its 3×3
// fine neighborhood with weights 1/4, 1/8, 1/16.
func buildRestriction(coarseL, fineL *pmat.Layout, nc, nf int) (*pmat.Mat, error) {
	coo := sparse.NewCOO(coarseL.LocalN, fineL.N)
	// 1D full-weighting stencil [1/4, 1/2, 1/4]; the tensor product gives
	// the classic 2D weights 1/4 (center), 1/8 (edge), 1/16 (corner).
	w := [3]float64{0.25, 0.5, 0.25}
	for lr := 0; lr < coarseL.LocalN; lr++ {
		cr := coarseL.Start + lr
		ci := cr % nc
		cj := cr / nc
		fi := 2*ci + 1
		fj := 2*cj + 1
		for dj := -1; dj <= 1; dj++ {
			for di := -1; di <= 1; di++ {
				ii := fi + di
				jj := fj + dj
				if ii < 0 || ii >= nf || jj < 0 || jj >= nf {
					continue
				}
				coo.Append(lr, jj*nf+ii, w[di+1]*w[dj+1])
			}
		}
	}
	return pmat.NewMatRect(coarseL, fineL, coo.ToCSR())
}

// interpWeight is one 1D interpolation contribution: coarse index and
// weight.
type interpWeight struct {
	idx int
	w   float64
}

// buildProlongation assembles bilinear interpolation P (fine×coarse).
func buildProlongation(fineL, coarseL *pmat.Layout, nf, nc int) (*pmat.Mat, error) {
	coo := sparse.NewCOO(fineL.LocalN, coarseL.N)
	// 1D contributions of fine index i to coarse indices: fine points
	// coinciding with a coarse point copy it; in-between points average
	// their coarse neighbors (boundary neighbors are the zero Dirichlet
	// values and drop out).
	contrib := func(i int, buf []interpWeight) []interpWeight {
		buf = buf[:0]
		if i%2 == 1 {
			return append(buf, interpWeight{(i - 1) / 2, 1})
		}
		if left := i/2 - 1; left >= 0 {
			buf = append(buf, interpWeight{left, 0.5})
		}
		if right := i / 2; right < nc {
			buf = append(buf, interpWeight{right, 0.5})
		}
		return buf
	}
	var bufX, bufY []interpWeight
	for lr := 0; lr < fineL.LocalN; lr++ {
		fr := fineL.Start + lr
		fi := fr % nf
		fj := fr / nf
		bufX = contrib(fi, bufX)
		bufY = contrib(fj, bufY)
		for _, cx := range bufX {
			for _, cy := range bufY {
				coo.Append(lr, cy.idx*nc+cx.idx, cx.w*cy.w)
			}
		}
	}
	return pmat.NewMatRect(fineL, coarseL, coo.ToCSR())
}

// Levels returns the number of grids in the hierarchy.
func (s *Solver) Levels() int { return len(s.levels) }

// Cycles returns the V-cycles used by the last Solve.
func (s *Solver) Cycles() int { return s.cycles }

// ResidualNorm returns the final residual 2-norm of the last Solve.
func (s *Solver) ResidualNorm() float64 { return s.rnorm }

// FineLayout returns the distribution of the finest level.
func (s *Solver) FineLayout() *pmat.Layout { return s.levels[0].layout }

// Solve runs V-cycles on A·x = b until the relative residual falls under
// Tol (collective). b and x are the finest level's local blocks; x is
// used as the initial guess.
func (s *Solver) Solve(b, x []float64) error {
	fine := s.levels[0]
	if len(b) != fine.layout.LocalN || len(x) != fine.layout.LocalN {
		return fmt.Errorf("mg: Solve: local vectors must have length %d", fine.layout.LocalN)
	}
	bnorm := pmat.Norm2(s.c, b)
	if bnorm == 0 {
		bnorm = 1
	}
	defer s.rec.StartPhase(telemetry.PhaseIterate)()
	for cycle := 1; cycle <= s.opts.MaxCycles; cycle++ {
		if err := s.vcycle(0, b, x); err != nil {
			return err
		}
		res := fine.a.Residual(b, x)
		s.cycles = cycle
		s.rnorm = res
		s.rec.Add("mg.cycles", 1)
		s.rec.Residual(cycle, res)
		if res <= s.opts.Tol*bnorm {
			return nil
		}
		if math.IsNaN(res) || math.IsInf(res, 0) {
			return fmt.Errorf("mg: diverged at cycle %d", cycle)
		}
	}
	return fmt.Errorf("mg: no convergence in %d cycles (relative residual %.3e)", s.opts.MaxCycles, s.rnorm/bnorm)
}

// smooth performs sweeps of damped Jacobi: x ← x + ω·D⁻¹(b − A·x). With
// a parallel pool the element-wise update fans out across workers.
func (s *Solver) smooth(lvl *level, b, x []float64, sweeps int) {
	omega := s.opts.Omega
	for n := 0; n < sweeps; n++ {
		lvl.a.Apply(lvl.r, x)
		if s.pool.Parallel() {
			s.jac = jacobiTask{x: x, b: b, r: lvl.r, invDiag: lvl.invDiag, omega: omega}
			s.pool.Run(len(x), &s.jac)
			s.jac = jacobiTask{}
			continue
		}
		for i := range x {
			x[i] += omega * (b[i] - lvl.r[i]) * lvl.invDiag[i]
		}
	}
}

// vcycle recursively applies one V-cycle at level k for A_k·x = b.
func (s *Solver) vcycle(k int, b, x []float64) error {
	lvl := s.levels[k]
	if k == len(s.levels)-1 {
		// Coarsest: gather (into the persistent buffer) and delegate to
		// the LISI coarse solver.
		bGlobal := pmat.AllGatherInto(lvl.layout, lvl.bGlobal, b)
		xg, err := s.opts.Coarse(s.coarseA, bGlobal)
		if err != nil {
			return fmt.Errorf("mg: coarse solve: %w", err)
		}
		copy(x, xg[lvl.layout.Start:lvl.layout.Start+lvl.layout.LocalN])
		return nil
	}
	s.smooth(lvl, b, x, s.opts.Nu1)

	// Residual and restriction.
	lvl.a.Apply(lvl.r, x)
	for i := range lvl.r {
		lvl.r[i] = b[i] - lvl.r[i]
	}
	bc := lvl.bc
	lvl.restrict.Apply(bc, lvl.r)

	// γ recursions into the coarser level: γ=1 is the V-cycle, γ=2 the
	// W-cycle (the coarsest level solves exactly either way, so extra
	// visits there are skipped). xc accumulates from a zero initial
	// guess, so clear the reused buffer.
	xc := lvl.xc
	for i := range xc {
		xc[i] = 0
	}
	gamma := s.opts.Gamma
	if k+1 == len(s.levels)-1 {
		gamma = 1
	}
	for g := 0; g < gamma; g++ {
		if err := s.vcycle(k+1, bc, xc); err != nil {
			return err
		}
	}

	// Prolong and correct.
	lvl.prolong.Apply(lvl.z, xc)
	for i := range x {
		x[i] += lvl.z[i]
	}
	s.smooth(lvl, b, x, s.opts.Nu2)
	return nil
}
