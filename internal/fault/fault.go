// Package fault is a deterministic, seed-driven fault injector for the
// comm runtime. It implements comm.FaultHook: at every communication
// event of every rank it draws from a per-rank PRNG seeded from
// Spec.Seed, so a schedule is a pure function of (spec, per-rank event
// sequence) — replayable byte for byte from the printed spec, no matter
// how the goroutines interleave in real time (delays change timing,
// never decisions).
//
// The spec language round-trips through ParseSpec/String so a failing
// chaos schedule from CI can be reproduced locally with the cmds'
// -fault-spec flag (docs/TESTING.md).
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/comm"
)

// Spec describes one fault schedule. Probabilities are per
// communication event and are evaluated in the order crash, stall,
// reorder, delay (first match wins), so they need not sum to anything.
type Spec struct {
	// Seed drives every random decision. Same spec, same schedule.
	Seed int64

	// PDelay is the probability of delaying an event by a uniform
	// random duration in (0, MaxDelay].
	PDelay   float64
	MaxDelay time.Duration

	// PReorder is the probability of turning a send into a
	// drop-with-redelivery after a uniform duration in (0, ReorderBy]
	// (non-send events degrade to a delay, see comm.FaultDropRedeliver).
	PReorder  float64
	ReorderBy time.Duration

	// PStall is the probability of stalling the rank for StallFor.
	PStall   float64
	StallFor time.Duration

	// PCrash is the probability of crashing the rank (world poisoned
	// with a cause wrapping comm.ErrInjectedFault). When CrashRank is
	// >= 0 only that rank may crash; -1 lets any rank crash.
	PCrash    float64
	CrashRank int

	// After arms the injector only from each rank's (After+1)-th
	// communication event on, letting a schedule spare the setup phase.
	After int
}

// String renders the spec in the ParseSpec syntax. Zero-valued fields
// are included so a printed spec is complete and self-describing.
func (s Spec) String() string {
	return fmt.Sprintf(
		"seed=%d,pdelay=%g,maxdelay=%s,preorder=%g,reorderby=%s,pstall=%g,stallfor=%s,pcrash=%g,crashrank=%d,after=%d",
		s.Seed, s.PDelay, s.MaxDelay, s.PReorder, s.ReorderBy,
		s.PStall, s.StallFor, s.PCrash, s.CrashRank, s.After)
}

// ParseSpec parses the comma-separated key=value syntax emitted by
// Spec.String (keys may appear in any order; omitted keys keep their
// zero value, except crashrank which defaults to -1 = any rank).
func ParseSpec(text string) (Spec, error) {
	s := Spec{CrashRank: -1}
	text = strings.TrimSpace(text)
	if text == "" {
		return s, fmt.Errorf("fault: empty spec")
	}
	for _, field := range strings.Split(text, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return s, fmt.Errorf("fault: spec field %q is not key=value", field)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseInt(value, 10, 64)
		case "pdelay":
			s.PDelay, err = parseProb(value)
		case "maxdelay":
			s.MaxDelay, err = time.ParseDuration(value)
		case "preorder":
			s.PReorder, err = parseProb(value)
		case "reorderby":
			s.ReorderBy, err = time.ParseDuration(value)
		case "pstall":
			s.PStall, err = parseProb(value)
		case "stallfor":
			s.StallFor, err = time.ParseDuration(value)
		case "pcrash":
			s.PCrash, err = parseProb(value)
		case "crashrank":
			s.CrashRank, err = strconv.Atoi(value)
		case "after":
			s.After, err = strconv.Atoi(value)
			if err == nil && s.After < 0 {
				err = fmt.Errorf("negative")
			}
		default:
			return s, fmt.Errorf("fault: unknown spec key %q", key)
		}
		if err != nil {
			return s, fmt.Errorf("fault: bad value for %s: %q", key, value)
		}
	}
	return s, nil
}

func parseProb(value string) (float64, error) {
	p, err := strconv.ParseFloat(value, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("probability outside [0,1]")
	}
	return p, nil
}

// rankState is one rank's private decision stream. Only that rank's
// goroutine touches it (see comm.FaultHook's concurrency contract), so
// no locking is needed; the padding keeps adjacent ranks off one cache
// line anyway.
type rankState struct {
	rng    *rand.Rand
	events int64
	counts map[comm.FaultOp]int64
	_      [64]byte
}

// Injector implements comm.FaultHook over a Spec for a fixed world
// size.
type Injector struct {
	spec  Spec
	ranks []rankState
}

// New builds an injector for a world of the given size. Each rank's
// PRNG is seeded from spec.Seed and the rank id, so schedules are
// independent per rank yet fully determined by the spec.
func New(spec Spec, worldSize int) *Injector {
	in := &Injector{spec: spec, ranks: make([]rankState, worldSize)}
	for r := range in.ranks {
		in.ranks[r].rng = rand.New(rand.NewSource(spec.Seed + int64(r)*int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF)))
		in.ranks[r].counts = make(map[comm.FaultOp]int64)
	}
	return in
}

// Spec returns the schedule this injector runs.
func (in *Injector) Spec() Spec { return in.spec }

// Fault implements comm.FaultHook.
func (in *Injector) Fault(rank int, kind comm.FaultKind, peer, tag int) comm.FaultDecision {
	st := &in.ranks[rank]
	st.events++
	if st.events <= int64(in.spec.After) {
		return comm.FaultDecision{}
	}
	// One uniform draw selects the op; a second draw (taken only when
	// a jittered duration is needed) sizes it. The draw count per event
	// is fixed per decision path, keeping the stream aligned across
	// replays.
	u := st.rng.Float64()
	s := in.spec
	switch {
	case u < s.PCrash:
		if s.CrashRank >= 0 && s.CrashRank != rank {
			return comm.FaultDecision{}
		}
		st.counts[comm.FaultCrash]++
		return comm.FaultDecision{
			Op: comm.FaultCrash,
			Cause: fmt.Errorf("%w: rank %d killed at %s event %d (spec %s)",
				comm.ErrInjectedFault, rank, kind, st.events, s),
		}
	case u < s.PCrash+s.PStall:
		st.counts[comm.FaultStall]++
		return comm.FaultDecision{Op: comm.FaultStall, Delay: s.StallFor}
	case u < s.PCrash+s.PStall+s.PReorder && kind == comm.FaultSend:
		st.counts[comm.FaultDropRedeliver]++
		return comm.FaultDecision{Op: comm.FaultDropRedeliver, Delay: jitter(st.rng, s.ReorderBy)}
	case u < s.PCrash+s.PStall+s.PReorder+s.PDelay:
		st.counts[comm.FaultDelay]++
		return comm.FaultDecision{Op: comm.FaultDelay, Delay: jitter(st.rng, s.MaxDelay)}
	}
	return comm.FaultDecision{}
}

// jitter draws a uniform duration in (0, max] (zero when max is zero).
func jitter(rng *rand.Rand, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(max))) + 1
}

// Events returns how many communication events rank has been consulted
// on. Call only after the Run region completed (the counters are
// rank-private while it is live).
func (in *Injector) Events(rank int) int64 { return in.ranks[rank].events }

// Counts returns the total injections performed, by op, across all
// ranks, rendered as a deterministic "op=n,..." string for logs. Call
// only after the Run region completed.
func (in *Injector) Counts() string {
	total := make(map[comm.FaultOp]int64)
	for r := range in.ranks {
		for op, n := range in.ranks[r].counts {
			total[op] += n
		}
	}
	ops := make([]comm.FaultOp, 0, len(total))
	for op := range total {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	parts := make([]string, 0, len(ops))
	for _, op := range ops {
		parts = append(parts, fmt.Sprintf("%s=%d", op, total[op]))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}
