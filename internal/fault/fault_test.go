package fault

import (
	"errors"
	"testing"
	"time"

	"repro/internal/comm"
)

func TestSpecStringParseRoundTrip(t *testing.T) {
	specs := []Spec{
		{Seed: 42, CrashRank: -1},
		{Seed: -7, PDelay: 0.25, MaxDelay: 3 * time.Millisecond, CrashRank: -1},
		{Seed: 1, PReorder: 0.1, ReorderBy: 500 * time.Microsecond, PStall: 0.05,
			StallFor: 2 * time.Millisecond, PCrash: 0.01, CrashRank: 2, After: 100},
	}
	for _, want := range specs {
		got, err := ParseSpec(want.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", want.String(), err)
		}
		if got != want {
			t.Errorf("round trip changed spec:\n want %+v\n got  %+v", want, got)
		}
	}
}

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec("seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 9 || s.CrashRank != -1 {
		t.Errorf("got %+v, want seed=9 and crashrank default -1", s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"seed",
		"seed=abc",
		"pdelay=1.5",
		"pcrash=-0.1",
		"maxdelay=fast",
		"after=-3",
		"bogus=1",
	}
	for _, text := range bad {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", text)
		}
	}
}

// drive pulls n decisions for every rank through a fresh injector and
// returns them flattened per rank.
func drive(spec Spec, ranks, n int) [][]comm.FaultDecision {
	in := New(spec, ranks)
	out := make([][]comm.FaultDecision, ranks)
	kinds := []comm.FaultKind{comm.FaultSend, comm.FaultRecv, comm.FaultBarrier}
	for r := 0; r < ranks; r++ {
		for i := 0; i < n; i++ {
			d := in.Fault(r, kinds[i%len(kinds)], (r+1)%ranks, i%5)
			out[r] = append(out[r], d)
		}
	}
	return out
}

func TestInjectorDeterministic(t *testing.T) {
	spec := Spec{
		Seed: 1234, PDelay: 0.3, MaxDelay: time.Millisecond,
		PReorder: 0.2, ReorderBy: time.Millisecond,
		PStall: 0.05, StallFor: time.Millisecond,
		PCrash: 0.02, CrashRank: -1, After: 3,
	}
	a := drive(spec, 4, 200)
	b := drive(spec, 4, 200)
	for r := range a {
		for i := range a[r] {
			da, db := a[r][i], b[r][i]
			if da.Op != db.Op || da.Delay != db.Delay {
				t.Fatalf("rank %d event %d differs across replays: %+v vs %+v", r, i, da, db)
			}
			if (da.Cause == nil) != (db.Cause == nil) {
				t.Fatalf("rank %d event %d cause presence differs", r, i)
			}
		}
	}
}

func TestInjectorSeedChangesSchedule(t *testing.T) {
	base := Spec{Seed: 1, PDelay: 0.5, MaxDelay: time.Millisecond, CrashRank: -1}
	other := base
	other.Seed = 2
	a, b := drive(base, 2, 200), drive(other, 2, 200)
	same := true
	for r := range a {
		for i := range a[r] {
			if a[r][i].Op != b[r][i].Op || a[r][i].Delay != b[r][i].Delay {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical 400-event schedules")
	}
}

func TestInjectorAfterArmsLate(t *testing.T) {
	spec := Spec{Seed: 5, PDelay: 1, MaxDelay: time.Millisecond, CrashRank: -1, After: 10}
	in := New(spec, 1)
	for i := 0; i < 10; i++ {
		if d := in.Fault(0, comm.FaultSend, 0, 0); d.Op != comm.FaultNone {
			t.Fatalf("event %d injected before After threshold: %+v", i, d)
		}
	}
	if d := in.Fault(0, comm.FaultSend, 0, 0); d.Op != comm.FaultDelay {
		t.Fatalf("event past After with pdelay=1 not delayed: %+v", d)
	}
	if in.Events(0) != 11 {
		t.Errorf("Events(0) = %d, want 11", in.Events(0))
	}
}

func TestInjectorCrashRankFilterAndCause(t *testing.T) {
	spec := Spec{Seed: 77, PCrash: 1, CrashRank: 1}
	in := New(spec, 2)
	if d := in.Fault(0, comm.FaultBarrier, -1, -1); d.Op != comm.FaultNone {
		t.Fatalf("rank 0 crashed despite crashrank=1: %+v", d)
	}
	d := in.Fault(1, comm.FaultBarrier, -1, -1)
	if d.Op != comm.FaultCrash {
		t.Fatalf("rank 1 with pcrash=1 did not crash: %+v", d)
	}
	if !errors.Is(d.Cause, comm.ErrInjectedFault) {
		t.Errorf("crash cause %v does not wrap comm.ErrInjectedFault", d.Cause)
	}
}

func TestInjectorReorderOnlyOnSend(t *testing.T) {
	spec := Spec{Seed: 3, PReorder: 1, ReorderBy: time.Millisecond, CrashRank: -1}
	in := New(spec, 1)
	if d := in.Fault(0, comm.FaultSend, 0, 0); d.Op != comm.FaultDropRedeliver {
		t.Fatalf("send with preorder=1 not dropped: %+v", d)
	}
	// Non-send events in the reorder band must degrade, never drop.
	for _, kind := range []comm.FaultKind{comm.FaultRecv, comm.FaultBarrier} {
		if d := in.Fault(0, kind, 0, 0); d.Op == comm.FaultDropRedeliver {
			t.Fatalf("%s event got DropRedeliver", kind)
		}
	}
}

func TestInjectorCounts(t *testing.T) {
	spec := Spec{Seed: 11, PDelay: 1, MaxDelay: time.Millisecond, CrashRank: -1}
	in := New(spec, 2)
	for r := 0; r < 2; r++ {
		for i := 0; i < 5; i++ {
			in.Fault(r, comm.FaultRecv, 0, 0)
		}
	}
	if got, want := in.Counts(), "delay=10"; got != want {
		t.Errorf("Counts() = %q, want %q", got, want)
	}
	if New(spec, 1).Counts() != "none" {
		t.Error("fresh injector Counts() != none")
	}
}
