// Matrixfree demonstrates the paper's §5.5 requirement: the application
// never assembles the coefficient matrix. It provides a MatrixFree port
// (the one application-side provides port of the §5.6c pattern) whose
// MatMult callback applies the 5-point stencil on the fly, and the
// solver component runs a Krylov method against that callback.
//
//	go run ./examples/matrixfree
package main

import (
	"fmt"
	"log"

	"repro/internal/cca"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/pmat"
)

// stencilApp applies the discretized operator without storing it; the
// callback is where a real application would evaluate its physics. It
// also offers a Jacobi preconditioner through the same port (ID
// distinguishes the two operators, as in the SIDL spec).
type stencilApp struct {
	op      *pmat.Mat // hidden behind the callback; the solver never sees it
	invDiag []float64
}

func (a *stencilApp) MatMult(id core.ID, x, y []float64, length int) int {
	switch id {
	case core.IDMatrix:
		a.op.Apply(y, x)
	case core.IDPreconditioner:
		for i := range y {
			y[i] = x[i] * a.invDiag[i]
		}
	default:
		return core.ErrBadArg
	}
	return core.OK
}

// SetServices lets the application publish its MatrixFree port.
func (a *stencilApp) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(a, core.PortMatrixFree, core.PortTypeMatrixFree)
}

func main() {
	const procs = 3
	const gridN = 40
	problem := mesh.PaperProblem(gridN)

	world, err := comm.NewWorld(procs)
	if err != nil {
		log.Fatal(err)
	}
	err = world.Run(func(c *comm.Comm) {
		layout, err := pmat.EvenLayout(c, problem.N())
		must(err)
		localA, b, err := problem.GenerateLocal(layout)
		must(err)
		op, err := pmat.NewMat(layout, localA)
		must(err)
		d := op.Diagonal()
		inv := make([]float64, len(d))
		for i := range d {
			inv[i] = 1 / d[i]
		}
		app := &stencilApp{op: op, invDiag: inv}

		// Wire application (provides MatrixFree) to solver (uses it) —
		// Figure 1(c) with the roles the paper chose.
		fw := cca.NewFramework(c)
		cca.RegisterClass("example.stencilApp", func() cca.Component { return app })
		must(fw.CreateInstance("app", "example.stencilApp"))
		must(fw.CreateInstance("solver", core.ClassKSPSolver))
		must(fw.Connect("solver", core.PortMatrixFree, "app", core.PortMatrixFree))

		comp, err := fw.Instance("solver")
		must(err)
		solver := comp.(core.SparseSolver)
		check(solver.SetStartRow(layout.Start))
		check(solver.SetLocalRows(layout.LocalN))
		check(solver.SetGlobalCols(problem.N()))
		// No SetupMatrix call: the operator lives behind the port.
		check(solver.SetupRHS(b, layout.LocalN, 1))
		check(solver.Set("solver", "bicgstab"))
		check(solver.SetBool("matfree_pc", true)) // use the app's preconditioner too
		check(solver.SetDouble("tol", 1e-9))

		x := make([]float64, layout.LocalN)
		status := make([]float64, core.StatusLen)
		check(solver.Solve(x, status, layout.LocalN, core.StatusLen))

		res := op.Residual(b, x)
		if c.Rank() == 0 {
			fmt.Printf("matrix-free solve on %d ranks: %d iterations, residual %.3e\n",
				procs, int(status[core.StatusIterations]), res)
			fmt.Println("(no assembled matrix ever crossed the interface)")
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func check(code int) {
	if err := core.Check(code); err != nil {
		log.Fatal(err)
	}
}
