// Solverswap is the paper's Figure 4 demo: one driver component, three
// solver components (PETSc-role, Trilinos-role, SuperLU-role multigrid
// included as a bonus fourth), re-wired at run time through the CCA
// framework — the driver code never changes.
//
//	go run ./examples/solverswap
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cca"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mesh"
)

func main() {
	const procs = 4
	const gridN = 63 // odd so the multigrid component can coarsen
	problem := mesh.PaperProblem(gridN)

	solvers := []struct {
		instance string
		class    string
		params   map[string]string
	}{
		{"petsc-role", core.ClassKSPSolver, map[string]string{
			"solver": "gmres", "preconditioner": "ilu", "tol": "1e-8"}},
		{"trilinos-role", core.ClassAztecSolver, map[string]string{
			"solver": "gmres", "preconditioner": "domdecomp", "tol": "1e-8"}},
		{"superlu-role", core.ClassSLUSolver, map[string]string{
			"ordering": "mmd", "refine_steps": "1"}},
		{"multigrid", core.ClassMGSolver, map[string]string{
			"grid_n": fmt.Sprint(gridN), "tol": "1e-8"}},
	}

	world, err := comm.NewWorld(procs)
	if err != nil {
		log.Fatal(err)
	}
	err = world.Run(func(c *comm.Comm) {
		fw := cca.NewFramework(c)
		must(fw.CreateInstance("driver", core.ClassDriver))
		for _, s := range solvers {
			must(fw.CreateInstance(s.instance, s.class))
		}
		comp, err := fw.Instance("driver")
		must(err)
		driver := comp.(*core.DriverComponent)

		if c.Rank() == 0 {
			fmt.Printf("problem: %dx%d grid, N=%d, nnz=%d, %d ranks\n\n",
				gridN, gridN, problem.N(), problem.NNZ(), procs)
		}
		for _, s := range solvers {
			// Dynamic re-wiring: connect, solve, disconnect (Figure 4 —
			// "only one of three links would show up").
			must(fw.Connect("driver", "solver", s.instance, core.PortSparseSolver))
			c.Barrier()
			start := time.Now()
			res, err := driver.SolveProblem(problem, core.CSR, s.params)
			c.Barrier()
			elapsed := time.Since(start)
			must(err)
			must(fw.Disconnect("driver", "solver"))
			if c.Rank() == 0 {
				fmt.Printf("%-14s %8.3fs  iterations=%-5d residual=%.2e  wiring=%v\n",
					s.instance, elapsed.Seconds(), res.Iterations, res.Residual, res.Converged)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
