// Quickstart: solve one sparse linear system through the LISI
// SparseSolver interface on 2 simulated processors.
//
//	go run ./examples/quickstart
//
// The program assembles the paper's 5-point PDE operator on a 32×32
// grid, feeds each rank's block rows through the interface in CSR form,
// solves with the PETSc-role component (GMRES + ILU), and checks the
// residual.
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/pmat"
)

func main() {
	const procs = 2
	const gridN = 32
	problem := mesh.PaperProblem(gridN)

	world, err := comm.NewWorld(procs)
	if err != nil {
		log.Fatal(err)
	}
	err = world.Run(func(c *comm.Comm) {
		// 1. Each rank generates its block rows of A and b (Figure 3).
		layout, err := pmat.EvenLayout(c, problem.N())
		if err != nil {
			log.Fatal(err)
		}
		localA, localB, err := problem.GenerateLocal(layout)
		if err != nil {
			log.Fatal(err)
		}

		// 2. Create a solver component and describe the distribution
		//    through the LISI setters (§6.3).
		solver := core.NewKSPComponent()
		check(solver.Initialize(c))
		check(solver.SetStartRow(layout.Start))
		check(solver.SetLocalRows(layout.LocalN))
		check(solver.SetLocalNNZ(localA.NNZ()))
		check(solver.SetGlobalCols(problem.N()))

		// 3. Transfer the assembled system (setupMatrix / setupRHS).
		check(solver.SetupMatrix(localA.Vals, localA.RowPtr, localA.ColInd,
			core.CSR, len(localA.RowPtr), localA.NNZ()))
		check(solver.SetupRHS(localB, layout.LocalN, 1))

		// 4. Generic parameters (§6.5) — the same calls work for any
		//    LISI component.
		check(solver.Set("solver", "gmres"))
		check(solver.Set("preconditioner", "ilu"))
		check(solver.SetDouble("tol", 1e-8))

		// 5. Solve and inspect the status vector.
		x := make([]float64, layout.LocalN)
		status := make([]float64, core.StatusLen)
		check(solver.Solve(x, status, layout.LocalN, core.StatusLen))

		// 6. Verify: global residual of the distributed solution.
		m, err := pmat.NewMat(layout, localA)
		if err != nil {
			log.Fatal(err)
		}
		res := m.Residual(localB, x)
		if c.Rank() == 0 {
			fmt.Printf("grid %dx%d (N=%d, nnz=%d) on %d ranks\n",
				gridN, gridN, problem.N(), problem.NNZ(), procs)
			fmt.Printf("converged in %d iterations, residual %.3e (reported %.3e)\n",
				int(status[core.StatusIterations]), res, status[core.StatusResidual])
			fmt.Printf("solver configuration:\n%s", solver.GetAll())
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

func check(code int) {
	if err := core.Check(code); err != nil {
		log.Fatal(err)
	}
}
