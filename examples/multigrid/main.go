// Multigrid demonstrates the paper's §5.2(e) recursion scenario across
// three grid sizes: the multigrid LISI component (whose coarsest-level
// solve re-enters the LISI interface through an inner direct component)
// shows near grid-independent cycle counts, while the single-level
// GMRES+ILU component's iterations grow with the grid.
//
//	go run ./examples/multigrid
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cca"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mesh"
)

func main() {
	const procs = 2
	grids := []int{15, 31, 63}

	world, err := comm.NewWorld(procs)
	if err != nil {
		log.Fatal(err)
	}
	err = world.Run(func(c *comm.Comm) {
		fw := cca.NewFramework(c)
		must(fw.CreateInstance("driver", core.ClassDriver))
		must(fw.CreateInstance("mg", core.ClassMGSolver))
		must(fw.CreateInstance("ksp", core.ClassKSPSolver))
		comp, err := fw.Instance("driver")
		must(err)
		driver := comp.(*core.DriverComponent)

		if c.Rank() == 0 {
			fmt.Printf("%-8s %-28s %-28s\n", "grid", "multigrid (cycles, time)", "gmres+ilu (iters, time)")
		}
		for _, n := range grids {
			problem := mesh.PaperProblem(n)

			must(fw.Connect("driver", "solver", "mg", core.PortSparseSolver))
			start := time.Now()
			mgRes, err := driver.SolveProblem(problem, core.CSR, map[string]string{
				"grid_n": fmt.Sprint(n), "tol": "1e-8",
			})
			mgTime := time.Since(start)
			must(err)
			must(fw.Disconnect("driver", "solver"))

			must(fw.Connect("driver", "solver", "ksp", core.PortSparseSolver))
			start = time.Now()
			kspRes, err := driver.SolveProblem(problem, core.CSR, map[string]string{
				"solver": "gmres", "preconditioner": "ilu", "tol": "1e-8",
			})
			kspTime := time.Since(start)
			must(err)
			must(fw.Disconnect("driver", "solver"))

			if c.Rank() == 0 {
				fmt.Printf("%-8s %-28s %-28s\n",
					fmt.Sprintf("%dx%d", n, n),
					fmt.Sprintf("%d cycles, %.3fs", mgRes.Iterations, mgTime.Seconds()),
					fmt.Sprintf("%d iters, %.3fs", kspRes.Iterations, kspTime.Seconds()))
			}
		}
		if c.Rank() == 0 {
			fmt.Println("\nmultigrid cycles stay ~constant while single-level iterations grow —")
			fmt.Println("the multilevel behaviour §5.2(e) anticipates, with the coarse solve")
			fmt.Println("delegated through the LISI interface to a direct component.")
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
