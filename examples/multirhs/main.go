// Multirhs walks through the paper's §5.2 reuse scenarios with the
// direct (SuperLU-role) component:
//
//	(b) the factorization is computed once and reused,
//	(c) multiple right-hand sides are solved against the same matrix,
//	(d) the matrix values change (same pattern) and the component
//	    refactors exactly once more.
//
// The factorization counter in the LISI status vector shows the reuse.
//
//	go run ./examples/multirhs
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/pmat"
)

func main() {
	const procs = 2
	const gridN = 48
	problem := mesh.PaperProblem(gridN)

	world, err := comm.NewWorld(procs)
	if err != nil {
		log.Fatal(err)
	}
	err = world.Run(func(c *comm.Comm) {
		layout, err := pmat.EvenLayout(c, problem.N())
		if err != nil {
			log.Fatal(err)
		}
		localA, b0, err := problem.GenerateLocal(layout)
		if err != nil {
			log.Fatal(err)
		}

		solver := core.NewSLUComponent()
		check(solver.Initialize(c))
		check(solver.SetStartRow(layout.Start))
		check(solver.SetLocalRows(layout.LocalN))
		check(solver.SetGlobalCols(problem.N()))
		check(solver.Set("ordering", "mmd"))
		check(solver.SetupMatrix(localA.Vals, localA.RowPtr, localA.ColInd,
			core.CSR, len(localA.RowPtr), localA.NNZ()))

		x := make([]float64, layout.LocalN)
		status := make([]float64, core.StatusLen)

		// (b)+(c): several right-hand sides, one factorization.
		for k := 0; k < 3; k++ {
			b := make([]float64, layout.LocalN)
			for i := range b {
				b[i] = b0[i] * float64(k+1)
			}
			check(solver.SetupRHS(b, layout.LocalN, 1))
			c.Barrier()
			start := time.Now()
			check(solver.Solve(x, status, layout.LocalN, core.StatusLen))
			c.Barrier()
			if c.Rank() == 0 {
				fmt.Printf("rhs %d: %7.4fs  factorizations so far: %d\n",
					k+1, time.Since(start).Seconds(), int(status[core.StatusFactorizations]))
			}
		}

		// A single call can also carry several RHS at once (§5.2c).
		const nRhs = 2
		multi := make([]float64, layout.LocalN*nRhs)
		copy(multi[:layout.LocalN], b0)
		copy(multi[layout.LocalN:], b0)
		check(solver.SetupRHS(multi, layout.LocalN, nRhs))
		sols := make([]float64, layout.LocalN*nRhs)
		check(solver.Solve(sols, status, layout.LocalN, core.StatusLen))
		if c.Rank() == 0 {
			fmt.Printf("block of %d rhs: factorizations still %d\n",
				nRhs, int(status[core.StatusFactorizations]))
		}

		// (d): new values, same pattern — one more factorization.
		scaled := localA.Clone()
		for i := range scaled.Vals {
			scaled.Vals[i] *= 2
		}
		check(solver.SetupMatrix(scaled.Vals, scaled.RowPtr, scaled.ColInd,
			core.CSR, len(scaled.RowPtr), scaled.NNZ()))
		check(solver.SetupRHS(b0, layout.LocalN, 1))
		check(solver.Solve(x, status, layout.LocalN, core.StatusLen))
		if c.Rank() == 0 {
			fmt.Printf("after matrix update: factorizations = %d (refactored once)\n",
				int(status[core.StatusFactorizations]))
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

func check(code int) {
	if err := core.Check(code); err != nil {
		log.Fatal(err)
	}
}
