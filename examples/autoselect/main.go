// Autoselect demonstrates the paper's opening motivation: "not every
// solver works on all problems... experiments on finding [the] best
// suitable solver require a plug and play mechanism."
//
// The program runs a sequence of linear systems whose character changes
// (the scenario of §1: a nonlinear PDE solver generating systems with
// widely varying properties), tries every registered LISI solver
// component on a small sampling solve, and commits the winner to the
// full-size system — all through the one SparseSolver port.
//
//	go run ./examples/autoselect
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cca"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mesh"
)

// scenario is one system in the evolving sequence.
type scenario struct {
	name       string
	convection float64 // stronger convection changes which solver wins
}

func main() {
	const procs = 3
	const sampleGrid = 31 // small probe systems
	const fullGrid = 63   // the production solve

	candidates := []struct {
		instance string
		class    string
	}{
		{"petsc-role", core.ClassKSPSolver},
		{"trilinos-role", core.ClassAztecSolver},
		{"superlu-role", core.ClassSLUSolver},
		{"multigrid", core.ClassMGSolver},
	}

	scenarios := []scenario{
		{name: "diffusion-dominated", convection: 1},
		{name: "moderate convection", convection: 30},
		{name: "strong convection", convection: 120},
	}

	world, err := comm.NewWorld(procs)
	if err != nil {
		log.Fatal(err)
	}
	err = world.Run(func(c *comm.Comm) {
		fw := cca.NewFramework(c)
		must(fw.CreateInstance("driver", core.ClassDriver))
		for _, cand := range candidates {
			must(fw.CreateInstance(cand.instance, cand.class))
		}
		comp, err := fw.Instance("driver")
		must(err)
		driver := comp.(*core.DriverComponent)

		solveWith := func(inst string, p mesh.Problem, gridN int) (time.Duration, *core.Result, error) {
			must(fw.Connect("driver", "solver", inst, core.PortSparseSolver))
			defer fw.Disconnect("driver", "solver")
			c.Barrier()
			start := time.Now()
			res, err := driver.SolveProblem(p, core.CSR, paramsFor(inst, gridN, p.Convection))
			c.Barrier()
			return time.Since(start), res, err
		}

		for _, sc := range scenarios {
			probe := mesh.PaperProblem(sampleGrid)
			probe.Convection = sc.convection
			if c.Rank() == 0 {
				fmt.Printf("=== %s (convection %g) ===\n", sc.name, sc.convection)
			}
			best, bestTime := "", time.Duration(0)
			for _, cand := range candidates {
				elapsed, res, err := solveWith(cand.instance, probe, sampleGrid)
				status := "ok"
				if err != nil || !res.Converged {
					status = "failed"
				}
				if c.Rank() == 0 {
					fmt.Printf("  probe %-14s %8.3fs  %s\n", cand.instance, elapsed.Seconds(), status)
				}
				if status == "ok" && (best == "" || elapsed < bestTime) {
					best, bestTime = cand.instance, elapsed
				}
			}
			// Timing jitter could make ranks disagree about the winner;
			// rank 0 decides and broadcasts so the commit solve stays
			// collective.
			best = c.BcastString(0, best)
			full := mesh.PaperProblem(fullGrid)
			full.Convection = sc.convection
			elapsed, res, err := solveWith(best, full, fullGrid)
			must(err)
			if c.Rank() == 0 {
				fmt.Printf("  -> selected %s for the full system: %.3fs, %d iterations, residual %.2e\n\n",
					best, elapsed.Seconds(), res.Iterations, res.Residual)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

// paramsFor supplies each component's vocabulary (the probe and full
// solves share them).
func paramsFor(inst string, gridN int, convection float64) map[string]string {
	switch inst {
	case "petsc-role":
		return map[string]string{"solver": "bicgstab", "preconditioner": "ilu", "tol": "1e-8", "maxits": "8000"}
	case "trilinos-role":
		return map[string]string{"solver": "gmres", "preconditioner": "domdecomp", "overlap": "1", "tol": "1e-8", "maxits": "8000"}
	case "superlu-role":
		return map[string]string{"ordering": "mmd"}
	case "multigrid":
		return map[string]string{
			"grid_n": fmt.Sprint(gridN), "tol": "1e-8", "cycles": "60",
			"convection": fmt.Sprint(convection),
		}
	}
	return nil
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
