# Development targets mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test check race workers vet fmt lint vet-self ignore-audit bench benchguard baseline telemetry chaos chaos-service serve-integration sweep golden fuzz clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check = everything CI's build-test + lint jobs run.
check: build vet fmt lint vet-self test race

race:
	$(GO) test -race ./internal/comm/... ./internal/pmat/... ./internal/core/... ./internal/telemetry/... ./internal/bench/... ./internal/service/... ./internal/par/... ./internal/slu/...

# workers = CI's workers-pool leg: the whole suite with every session
# forced onto a pooled backend (core's LISI_WORKERS env fallback).
workers:
	LISI_WORKERS=4 $(GO) test -race -count=1 ./...

vet:
	$(GO) vet ./...

# lint = the SPMD-aware static analysis suite (docs/ANALYSIS.md). Output is
# deterministic (sorted by file:line:column), exit is nonzero on findings.
lint:
	$(GO) run ./cmd/lisi-vet ./...

# vet-self = the analyzers and their driver pass their own suite (the
# bufown recycle rules apply to any /comm package, the engine must keep
# its own collectives symmetric, and so on).
vet-self:
	$(GO) run ./cmd/lisi-vet ./internal/analysis ./cmd/lisi-vet

# ignore-audit = report //lisi:ignore comments that no longer suppress
# anything (full suite, opt-in checks on; exit 1 when any are stale).
ignore-audit:
	$(GO) run ./cmd/lisi-vet -ignore-audit ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench = CI's smoke (compile & run every benchmark once) + the guard.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	./scripts/benchguard.sh

benchguard:
	./scripts/benchguard.sh

baseline:
	./scripts/benchguard.sh --update

telemetry:
	$(GO) run ./cmd/lisi-bench -telemetry telemetry.json -runs 3
	@echo "reports in telemetry.json"

# chaos = the seeded fault-injection suite (docs/TESTING.md). Override the
# seed to replay a CI failure: make chaos CHAOS_SEED=1337
CHAOS_SEED ?=
chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -v ./internal/fault ./internal/chaos

# chaos-service = the same seeded-fault contract at the HTTP edge
# (docs/SERVICE.md): typed JSON abort statuses, never hangs.
chaos-service:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -tags faultinject -v \
		-run 'TestServiceChaosTypedStatuses|TestServiceServerLevelFaultSpec|TestServiceFaultSpecHTTP' ./internal/service

# serve-integration = CI's black-box lisi-serve job: build the binary,
# boot it, drive concurrent multi-tenant load, SIGTERM-drain it.
serve-integration:
	$(GO) build -o /tmp/lisi-serve ./cmd/lisi-serve
	LISI_SERVE_BIN=/tmp/lisi-serve $(GO) test -race -count=1 -v -run TestServeBinary ./internal/service

# sweep = CI's sweep-smoke leg: the accuracy/efficiency sweep over the
# checked-in workload corpus (docs/WORKLOADS.md), report written next to
# the repo root.
sweep:
	$(GO) run ./cmd/lisi-bench -sweep -corpus testdata/corpus -sweep-out sweep.json -sweep-md sweep.md

# golden = the golden conformance suite. Regenerate the digests after an
# intentional numerical change with make golden UPDATE=1.
golden:
	LISI_UPDATE_GOLDEN=$(UPDATE) $(GO) test -race -count=1 -v -run TestGoldenConformance ./internal/integration

# fuzz = CI's smoke: each native fuzz target for FUZZTIME (seed corpora in
# testdata/fuzz/ replay in every plain `go test` run regardless).
FUZZTIME ?= 10s
fuzz:
	for t in FuzzCSRFromTriplets FuzzNewCSRValidation FuzzReadMatrixMarket; do \
		$(GO) test -run='^$$' -fuzz="^$$t\$$" -fuzztime=$(FUZZTIME) ./internal/sparse || exit 1; done
	for t in FuzzPartition FuzzGenerateRows; do \
		$(GO) test -run='^$$' -fuzz="^$$t\$$" -fuzztime=$(FUZZTIME) ./internal/mesh || exit 1; done
	$(GO) test -run='^$$' -fuzz='^FuzzLevels$$' -fuzztime=$(FUZZTIME) ./internal/par

clean:
	rm -f telemetry.json out.json sweep.json sweep.md
