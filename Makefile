# Development targets mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test check race vet fmt lint bench benchguard baseline telemetry clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check = everything CI's build-test + lint jobs run.
check: build vet fmt lint test race

race:
	$(GO) test -race ./internal/comm/... ./internal/pmat/... ./internal/core/... ./internal/telemetry/... ./internal/bench/...

vet:
	$(GO) vet ./...

# lint = the SPMD-aware static analysis suite (docs/ANALYSIS.md). Output is
# deterministic (sorted by file:line:column), exit is nonzero on findings.
lint:
	$(GO) run ./cmd/lisi-vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench = CI's smoke (compile & run every benchmark once) + the guard.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	./scripts/benchguard.sh

benchguard:
	./scripts/benchguard.sh

baseline:
	./scripts/benchguard.sh --update

telemetry:
	$(GO) run ./cmd/lisi-bench -telemetry telemetry.json -runs 3
	@echo "reports in telemetry.json"

clean:
	rm -f telemetry.json out.json
