// Package repro_test hosts the top-level benchmark harness: one
// testing.B benchmark per evaluation artifact of the CCA-LISI paper
// (Figure 5 and Table 1), plus ablation benchmarks for the design
// decisions of §6 (r-array argument passing, separated distribution
// setters, and ports indirection).
//
// The benchmarks run reduced problem sizes so `go test -bench=.`
// completes in minutes on one core; `go run ./cmd/lisi-bench` executes
// the faithful paper sizes (n=200 / nnz up to 798,400) and prints the
// paper's tables and series.
package repro_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/cca"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mesh"
)

// benchGrid keeps the per-iteration cost moderate (n=60 ⇒ nnz=17,760).
const benchGrid = 60

// BenchmarkFigure5 regenerates Figure 5's three panels: CCA vs NonCCA
// execution time per solver component across processor counts.
func BenchmarkFigure5(b *testing.B) {
	b.ReportAllocs()
	for _, solver := range bench.Solvers() {
		for _, procs := range bench.PaperProcs() {
			for _, path := range []string{"CCA", "NonCCA"} {
				name := fmt.Sprintf("%s/p=%d/%s", solver, procs, path)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					var lastIters int
					for i := 0; i < b.N; i++ {
						var m bench.Measurement
						var err error
						if path == "CCA" {
							m, err = bench.RunCCA(context.Background(), procs, solver, benchGrid, bench.DefaultParams())
						} else {
							m, err = bench.RunNonCCA(context.Background(), procs, solver, benchGrid, bench.DefaultParams())
						}
						if err != nil {
							b.Fatal(err)
						}
						lastIters = m.Iterations
					}
					b.ReportMetric(float64(lastIters), "iters")
				})
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1's rows (reduced sizes): the
// PETSc-role component with and without the LISI interface across
// problem sizes, on the paper's 8 processors.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for _, nnz := range []int{12300, 49600} {
		n, err := mesh.GridForNNZ(nnz)
		if err != nil {
			b.Fatal(err)
		}
		for _, path := range []string{"CCA", "NonCCA"} {
			b.Run(fmt.Sprintf("nnz=%d/%s", nnz, path), func(b *testing.B) {
				b.ReportAllocs()
				var lastIters int
				for i := 0; i < b.N; i++ {
					var m bench.Measurement
					var err error
					if path == "CCA" {
						m, err = bench.RunCCA(context.Background(), 8, bench.SolverKSP, n, bench.DefaultParams())
					} else {
						m, err = bench.RunNonCCA(context.Background(), 8, bench.SolverKSP, n, bench.DefaultParams())
					}
					if err != nil {
						b.Fatal(err)
					}
					lastIters = m.Iterations
				}
				b.ReportMetric(float64(lastIters), "iters")
			})
		}
	}
}

// BenchmarkAblationRArray measures the §6.2 decision: passing assembled
// arrays by reference (r-array semantics, what LISI does) versus copying
// them first (normal SIDL array semantics). The measured operation is
// the full SetupMatrix staging path of the ksp component.
func BenchmarkAblationRArray(b *testing.B) {
	b.ReportAllocs()
	p := mesh.PaperProblem(80) // nnz = 31,680
	a, _, err := p.GenerateGlobal()
	if err != nil {
		b.Fatal(err)
	}
	w, err := comm.NewWorld(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"rarray", "sidl-copy"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			if err := w.Run(func(c *comm.Comm) {
				s := core.NewKSPComponent()
				s.Initialize(c)
				s.SetStartRow(0)
				s.SetLocalRows(a.Rows)
				s.SetGlobalCols(a.Cols)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					vals, rp, ci := a.Vals, a.RowPtr, a.ColInd
					if mode == "sidl-copy" {
						vals = append([]float64(nil), a.Vals...)
						rp = append([]int(nil), a.RowPtr...)
						ci = append([]int(nil), a.ColInd...)
					}
					if code := s.SetupMatrix(vals, rp, ci, core.CSR, len(rp), a.NNZ()); code != core.OK {
						b.Fatalf("SetupMatrix: %d", code)
					}
				}
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationSeparatedSetters measures the §6.3 decision:
// distribution parameters set once through dedicated methods versus
// re-validated/re-passed before every data call.
func BenchmarkAblationSeparatedSetters(b *testing.B) {
	b.ReportAllocs()
	p := mesh.PaperProblem(40)
	a, bb, err := p.GenerateGlobal()
	if err != nil {
		b.Fatal(err)
	}
	w, err := comm.NewWorld(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"set-once", "per-call"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			if err := w.Run(func(c *comm.Comm) {
				s := core.NewKSPComponent()
				s.Initialize(c)
				s.SetStartRow(0)
				s.SetLocalRows(a.Rows)
				s.SetGlobalCols(a.Cols)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "per-call" {
						// What the rejected design would do before every
						// data-carrying call.
						s.SetStartRow(0)
						s.SetLocalRows(a.Rows)
						s.SetLocalNNZ(a.NNZ())
						s.SetGlobalCols(a.Cols)
					}
					if code := s.SetupRHS(bb, a.Rows, 1); code != core.OK {
						b.Fatalf("SetupRHS: %d", code)
					}
				}
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationPortIndirection measures the CCA ports mechanism
// itself: invoking a component method through GetPort + interface
// dispatch versus calling the component directly — the per-call price of
// the framework layer whose constancy Table 1 demonstrates.
func BenchmarkAblationPortIndirection(b *testing.B) {
	b.ReportAllocs()
	w, err := comm.NewWorld(1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("through-port", func(b *testing.B) {
		b.ReportAllocs()
		if err := w.Run(func(c *comm.Comm) {
			fw := cca.NewFramework(c)
			if err := fw.CreateInstance("driver", core.ClassDriver); err != nil {
				b.Fatal(err)
			}
			if err := fw.CreateInstance("solver", core.ClassKSPSolver); err != nil {
				b.Fatal(err)
			}
			if err := fw.Connect("driver", "solver", "solver", core.PortSparseSolver); err != nil {
				b.Fatal(err)
			}
			solverComp, _ := fw.Instance("solver")
			s := solverComp.(core.SparseSolver)
			s.Initialize(c)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fetch the port and make one cheap call, as the driver
				// does for every interface interaction.
				port, err := fw.Instance("solver")
				if err != nil {
					b.Fatal(err)
				}
				if code := port.(core.SparseSolver).SetStartRow(0); code != core.OK {
					b.Fatal("SetStartRow failed")
				}
			}
		}); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		if err := w.Run(func(c *comm.Comm) {
			s := core.NewKSPComponent()
			s.Initialize(c)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if code := s.SetStartRow(0); code != core.OK {
					b.Fatal("SetStartRow failed")
				}
			}
		}); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkMultigridVsSingleLevel is the ablation for the multilevel
// extension (§5.2e): V-cycle multigrid against single-level GMRES+ILU on
// the same problem and tolerance.
func BenchmarkMultigridVsSingleLevel(b *testing.B) {
	b.ReportAllocs()
	const n = 63 // 2^6-1 coarsens fully
	p := mesh.PaperProblem(n)
	mgParams := map[string]string{"grid_n": fmt.Sprint(n), "tol": "1e-6"}
	w, err := comm.NewWorld(2)
	if err != nil {
		b.Fatal(err)
	}
	runOne := func(b *testing.B, class string, params map[string]string) {
		if err := w.Run(func(c *comm.Comm) {
			fw := cca.NewFramework(c)
			fw.CreateInstance("driver", core.ClassDriver)
			fw.CreateInstance("solver", class)
			if err := fw.Connect("driver", "solver", "solver", core.PortSparseSolver); err != nil {
				b.Fatal(err)
			}
			drv, _ := fw.Instance("driver")
			driver := drv.(*core.DriverComponent)
			c.Barrier()
			if _, err := driver.SolveProblem(p, core.CSR, params); err != nil {
				b.Fatal(err)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("multigrid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runOne(b, core.ClassMGSolver, mgParams)
		}
	})
	b.Run("gmres-ilu", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runOne(b, core.ClassKSPSolver, bench.DefaultParams())
		}
	})
}
